// Package ml defines the regressor interface shared by all eight candidate
// models of Tables III/IV, the evaluation metrics, and the persistence
// envelope used to save trained models at install time and reload them in
// the runtime library.
package ml

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Regressor is a trainable model mapping a feature vector to a scalar
// prediction (GEMM runtime).
type Regressor interface {
	// Name returns the model's display name as used in Tables III/IV.
	Name() string
	// Fit trains on rows X with targets y. Implementations must not retain
	// the caller's slices.
	Fit(X [][]float64, y []float64) error
	// Predict evaluates one feature vector. Calling Predict before a
	// successful Fit is a programmer error and may panic.
	Predict(x []float64) float64
}

// PredictBatch evaluates many rows with any Regressor.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// ValidateXY checks the shape invariants shared by every Fit implementation.
func ValidateXY(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	w := len(X[0])
	if w == 0 {
		return fmt.Errorf("ml: rows have no features")
	}
	for i, r := range X {
		if len(r) != w {
			return fmt.Errorf("ml: row %d has width %d, want %d", i, len(r), w)
		}
	}
	return nil
}

// RMSE returns the root mean squared error of predictions against targets.
func RMSE(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic("ml: RMSE length mismatch")
	}
	if len(y) == 0 {
		return 0
	}
	var ss float64
	for i := range y {
		d := pred[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(y)))
}

// MAE returns the mean absolute error.
func MAE(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic("ml: MAE length mismatch")
	}
	if len(y) == 0 {
		return 0
	}
	var s float64
	for i := range y {
		s += math.Abs(pred[i] - y[i])
	}
	return s / float64(len(y))
}

// R2 returns the coefficient of determination.
func R2(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic("ml: R2 length mismatch")
	}
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := pred[i] - y[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Normalise divides each value by the maximum of the set, producing the
// "normalised test RMSE" convention of Tables III/IV where the worst model
// scores 1.00.
func Normalise(values map[string]float64) map[string]float64 {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make(map[string]float64, len(values))
	for k, v := range values {
		if max > 0 {
			out[k] = v / max
		} else {
			out[k] = 0
		}
	}
	return out
}

// SortedNames returns map keys in sorted order (stable table rendering).
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Envelope wraps a trained model for JSON persistence: the concrete type is
// recorded by Kind and restored via the factory registry below.
type Envelope struct {
	Kind  string          `json:"kind"`
	Model json.RawMessage `json:"model"`
}

// factories maps Envelope.Kind to a constructor of the zero model.
var factories = map[string]func() Regressor{}

// RegisterKind installs a persistence factory for a model kind. It panics on
// duplicate registration — kinds are compile-time constants.
func RegisterKind(kind string, fn func() Regressor) {
	if _, dup := factories[kind]; dup {
		panic("ml: duplicate model kind " + kind)
	}
	factories[kind] = fn
}

// Marshal serialises a trained model into an envelope. The model's exported
// fields must fully describe its trained state.
func Marshal(kind string, r Regressor) ([]byte, error) {
	if _, ok := factories[kind]; !ok {
		return nil, fmt.Errorf("ml: unregistered model kind %q", kind)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("ml: marshal %s: %w", kind, err)
	}
	return json.Marshal(Envelope{Kind: kind, Model: raw})
}

// Unmarshal restores a model from an envelope produced by Marshal.
func Unmarshal(data []byte) (Regressor, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: decode envelope: %w", err)
	}
	fn, ok := factories[env.Kind]
	if !ok {
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
	r := fn()
	if err := json.Unmarshal(env.Model, r); err != nil {
		return nil, fmt.Errorf("ml: decode %s: %w", env.Kind, err)
	}
	return r, nil
}
