package serve

import "repro/internal/ops"

// Op identifies the BLAS-3 operation a thread-selection decision applies to.
// It is the operation registry's ops.Op re-exported: the serving layer keys
// its decision cache and batch splits by op but holds no operation knowledge
// of its own — wire names, parsing, shape canonicalisation and the op set
// all come from the registry table (internal/ops), so registering a new
// operation needs no serving-layer change at all.
type Op = ops.Op

// Operation kinds, re-exported from the registry for serve's callers.
const (
	// OpGEMM is the general matrix multiply C ← αAB + βC (m×k×n).
	OpGEMM = ops.GEMM
	// OpSYRK is the symmetric rank-k update C ← αAAᵀ + βC; its shape triple
	// is (n, k, n).
	OpSYRK = ops.SYRK
	// OpSYR2K is the symmetric rank-2k update C ← α(ABᵀ + BAᵀ) + βC; its
	// shape triple is (n, k, n).
	OpSYR2K = ops.SYR2K
)

// ParseOp maps a wire name to an Op via the registry. The empty string
// selects OpGEMM so pre-op clients (and hand-written queries) keep working
// unchanged.
func ParseOp(s string) (Op, error) { return ops.Parse(s) }
