package core

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// quickGather returns a small simulated-Gadi gather config for tests.
func quickGather(shapes int) GatherConfig {
	sim := simtime.New(simtime.DefaultConfig(machine.Gadi()))
	return GatherConfig{
		Timer:      sim,
		Domain:     sampling.DefaultDomain().WithCapMB(100),
		NumShapes:  shapes,
		Candidates: DefaultCandidates(96),
		Iters:      3,
		Seed:       1,
	}
}

func quickTrain(t *testing.T, shapes int) *TrainResult {
	t.Helper()
	cfg := DefaultTrainConfig(quickGather(shapes), "Gadi", 48)
	cfg.Models = DefaultModels(1, true)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGatherLocalItersExact pins the local-platform timing budget: one
// Gather with Iters: 3 must run exactly NumShapes × len(Candidates) × 3
// timed GEMMs. Before RealTimer implemented MeasureMean, Gather fell back
// to its own Iters loop around Time — which itself averaged Iters
// repetitions — squaring the repetition count (9 GEMMs per configuration
// for Iters: 3) and silently tripling installation time.
func TestGatherLocalItersExact(t *testing.T) {
	rt := simtime.NewRealTimer(3)
	cfg := GatherConfig{
		Timer:      rt,
		Domain:     sampling.Domain{MaxDim: 32, MaxBytes: 1 << 20, ElemBytes: 4},
		NumShapes:  2,
		Candidates: []int{1, 2},
		Iters:      3,
		Seed:       1,
	}
	data, err := Gather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 {
		t.Fatalf("gathered %d shapes", len(data))
	}
	want := int64(2 * 2 * 3) // shapes × candidates × iters
	if got := rt.GemmCalls(); got != want {
		t.Errorf("gather ran %d timed GEMMs, want exactly %d (iters must not compound)", got, want)
	}
}

func TestDefaultCandidates(t *testing.T) {
	g := DefaultCandidates(96)
	if g[len(g)-1] != 96 || g[0] != 1 {
		t.Errorf("Gadi candidates = %v", g)
	}
	s := DefaultCandidates(256)
	if s[len(s)-1] != 256 {
		t.Errorf("Setonix candidates = %v", s)
	}
	// No duplicates, sorted.
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("candidates not strictly increasing: %v", s)
		}
	}
	odd := DefaultCandidates(7)
	if odd[len(odd)-1] != 7 {
		t.Errorf("max not included: %v", odd)
	}
}

func TestGatherValidation(t *testing.T) {
	if _, err := Gather(GatherConfig{}); err == nil {
		t.Error("nil timer should error")
	}
	cfg := quickGather(0)
	if _, err := Gather(cfg); err == nil {
		t.Error("zero shapes should error")
	}
	cfg = quickGather(3)
	cfg.Candidates = nil
	if _, err := Gather(cfg); err == nil {
		t.Error("no candidates should error")
	}
}

func TestGatherShapes(t *testing.T) {
	data, err := Gather(quickGather(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 12 {
		t.Fatalf("%d shapes", len(data))
	}
	for _, st := range data {
		if len(st.Times) != len(DefaultCandidates(96)) {
			t.Fatalf("shape %v has %d timings", st.Shape, len(st.Times))
		}
		for _, ct := range st.Times {
			if ct.Seconds <= 0 {
				t.Fatalf("non-positive timing for %v @%d", st.Shape, ct.Threads)
			}
		}
		if _, ok := st.TimeAt(48); !ok {
			t.Fatal("reference threads missing from sweep")
		}
		if _, ok := st.TimeAt(5); ok {
			t.Fatal("TimeAt should miss non-candidate count")
		}
		best := st.BestMeasured()
		for _, ct := range st.Times {
			if ct.Seconds < best.Seconds {
				t.Fatal("BestMeasured not minimal")
			}
		}
	}
}

func TestRecordsFlattening(t *testing.T) {
	data, _ := Gather(quickGather(4))
	recs := Records(data)
	if len(recs) != 4*len(DefaultCandidates(96)) {
		t.Fatalf("%d records", len(recs))
	}
}

func TestTrainEndToEnd(t *testing.T) {
	res := quickTrain(t, 70)
	if len(res.Reports) != 8 {
		t.Fatalf("%d model reports, want 8", len(res.Reports))
	}
	// Normalised RMSE convention: worst model exactly 1.
	worst := 0.0
	for _, r := range res.Reports {
		if r.NormRMSE > worst {
			worst = r.NormRMSE
		}
		if r.RMSE < 0 || math.IsNaN(r.RMSE) {
			t.Errorf("%s: RMSE %v", r.Name, r.RMSE)
		}
		if r.EvalMicros <= 0 {
			t.Errorf("%s: eval time %v", r.Name, r.EvalMicros)
		}
	}
	if math.Abs(worst-1) > 1e-9 {
		t.Errorf("max NormRMSE = %v, want 1", worst)
	}
	// Tree ensembles must out-predict linear models on this surface
	// (the central observation of Tables III/IV).
	rmse := map[string]float64{}
	for _, r := range res.Reports {
		rmse[r.Kind] = r.RMSE
	}
	if rmse["xgb"] >= rmse["linear"] {
		t.Errorf("XGB RMSE %v not below linear %v", rmse["xgb"], rmse["linear"])
	}
	// The selected library must beat doing nothing (estimated mean > 1).
	if res.Library == nil || res.Library.EvalSeconds() < 0 {
		t.Fatal("missing library")
	}
	best, _ := SpecByKind(DefaultModels(1, true), res.Library.ModelKind())
	if best.Kind == "" {
		t.Errorf("selected kind %q not among specs", res.Library.ModelKind())
	}
	// Report renders all rows.
	txt := RenderReport(res.Reports)
	if !strings.Contains(txt, "XGBoost") || !strings.Contains(txt, "EstMean") {
		t.Errorf("report rendering:\n%s", txt)
	}
}

func TestTrainOnDataValidation(t *testing.T) {
	data, _ := Gather(quickGather(12))
	cfg := DefaultTrainConfig(quickGather(12), "Gadi", 48)
	cfg.Models = DefaultModels(1, true)

	bad := cfg
	bad.TestFrac = 0
	if _, err := TrainOnData(bad, data); err == nil {
		t.Error("TestFrac=0 should error")
	}
	bad = cfg
	bad.ReferenceThreads = 31
	if _, err := TrainOnData(bad, data); err == nil {
		t.Error("reference not in candidates should error")
	}
	bad = cfg
	bad.Models = nil
	if _, err := TrainOnData(bad, data); err == nil {
		t.Error("no models should error")
	}
	if _, err := TrainOnData(cfg, data[:3]); err == nil {
		t.Error("too few shapes should error")
	}
}

func TestLibraryPredictSeconds(t *testing.T) {
	res := quickTrain(t, 60)
	lib := res.Library
	// Predicted seconds are positive, and the ranking makes argmin coherent:
	// the optimal thread count's prediction is the smallest.
	m, k, n := 512, 512, 512
	opt := lib.OptimalThreads(m, k, n)
	pOpt := lib.PredictSeconds(m, k, n, opt)
	if pOpt <= 0 {
		t.Fatalf("predicted %v", pOpt)
	}
	for _, c := range lib.Candidates {
		if lib.PredictSeconds(m, k, n, c) < pOpt-1e-15 {
			t.Fatalf("candidate %d predicted faster than chosen %d", c, opt)
		}
	}
}

func TestPredictorCaching(t *testing.T) {
	res := quickTrain(t, 60)
	p := res.Library.NewPredictor()
	a := p.OptimalThreads(300, 300, 300)
	b := p.OptimalThreads(300, 300, 300)
	if a != b {
		t.Fatal("cached decision changed")
	}
	hits, misses := p.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d, want 1/1", hits, misses)
	}
	// Different shape invalidates.
	p.OptimalThreads(301, 300, 300)
	_, misses = p.CacheStats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
	// Uncached library path agrees with predictor.
	if got := res.Library.OptimalThreads(300, 300, 300); got != a {
		t.Errorf("library %d vs predictor %d", got, a)
	}
	p.Reset()
	p.OptimalThreads(301, 300, 300)
	_, misses = p.CacheStats()
	if misses != 3 {
		t.Errorf("Reset did not clear cache")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res := quickTrain(t, 60)
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := res.Library.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != res.Library.Platform || back.ModelKind() != res.Library.ModelKind() {
		t.Errorf("metadata changed: %+v", back)
	}
	for _, sh := range [][3]int{{64, 64, 64}, {1000, 500, 2000}, {4096, 64, 64}} {
		a := res.Library.OptimalThreads(sh[0], sh[1], sh[2])
		b := back.OptimalThreads(sh[0], sh[1], sh[2])
		if a != b {
			t.Errorf("shape %v: choice changed %d -> %d after reload", sh, a, b)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file should error")
	}
	v0 := filepath.Join(t.TempDir(), "v0.json")
	if err := writeFile(v0, `{"format_version":0}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(v0); err == nil {
		t.Error("wrong version should error")
	}
}

func TestTrainedModelPicksFewThreadsForSkinnyShapes(t *testing.T) {
	// The qualitative behaviour behind Table VII: a trained library should
	// choose far fewer threads for 64×2048×64 than for a large square GEMM.
	res := quickTrain(t, 90)
	lib := res.Library
	skinny := lib.OptimalThreads(64, 2048, 64)
	square := lib.OptimalThreads(6000, 6000, 6000)
	if skinny >= square {
		t.Errorf("skinny choice %d not below square choice %d", skinny, square)
	}
	if skinny > 48 {
		t.Errorf("skinny shape assigned %d threads", skinny)
	}
}

// writeFile is a tiny test helper (avoids importing os in multiple places).
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
