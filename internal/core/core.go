// Package core implements ADSALA proper: the install-time workflow (gather
// timings → preprocess → tune → fit → evaluate → select the model with the
// best estimated speedup) and the runtime library (load model, predict the
// optimal thread count per GEMM, cache repeated shapes).
//
// The split mirrors Figs 2 and 3 of the paper: Train produces the two
// artefacts (preprocessing config + trained model) that the runtime
// Predictor loads and evaluates on the hot path.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ops"
	"repro/internal/preprocess"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// CandidateTime is one measured (thread count, wall seconds) pair.
type CandidateTime struct {
	Threads int     `json:"threads"`
	Seconds float64 `json:"seconds"`
}

// ShapeTimings holds the timing sweep of one GEMM shape across every
// candidate thread count.
type ShapeTimings struct {
	Shape sampling.Shape  `json:"shape"`
	Times []CandidateTime `json:"times"`
}

// TimeAt returns the measured seconds at the given thread count.
func (s ShapeTimings) TimeAt(threads int) (float64, bool) {
	for _, ct := range s.Times {
		if ct.Threads == threads {
			return ct.Seconds, true
		}
	}
	return 0, false
}

// BestMeasured returns the thread count with the smallest measured time.
// An empty sweep yields the zero CandidateTime rather than a panic.
func (s ShapeTimings) BestMeasured() CandidateTime {
	if len(s.Times) == 0 {
		return CandidateTime{}
	}
	best := s.Times[0]
	for _, ct := range s.Times[1:] {
		if ct.Seconds < best.Seconds {
			best = ct
		}
	}
	return best
}

// DefaultCandidates returns the thread counts evaluated at runtime for a
// platform with the given maximum: dense at low counts where the optimum
// usually falls, and aligned with topology boundaries above.
func DefaultCandidates(max int) []int {
	base := []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
		112, 128, 160, 192, 224, 256}
	var out []int
	for _, c := range base {
		if c < max {
			out = append(out, c)
		}
	}
	out = append(out, max)
	return out
}

// GatherConfig drives the data-gathering phase (Fig 2, left box).
type GatherConfig struct {
	Timer      simtime.Timer
	Domain     sampling.Domain
	NumShapes  int
	Candidates []int
	// Iters is the number of timing repetitions averaged per configuration
	// (the paper uses 10; §V-B.3).
	Iters int
	Seed  int64
	// Op selects the operation to time. The zero value is ops.GEMM (the
	// paper's sweep); other ops map each sampled shape through the
	// registry's canonical triple and require a per-op capable Timer
	// (simtime.OpTimer — both the Simulator and the RealTimer qualify).
	Op ops.Op
}

// meanTimer is implemented by timers that average repetitions natively.
type meanTimer interface {
	MeasureMean(m, k, n, threads, iters int) float64
}

// Gatherer produces the timing sweep of one operation. Two implementations
// exist: LocalGatherer runs the sweep in-process on cfg.Timer (the paper's
// single-node install path), and gather.Coordinator shards it across a fleet
// of adsala-worker daemons. Train picks whichever TrainConfig names; the
// merged distributed sweep is defined to be identical to the local one for a
// deterministic timer, so the choice never changes what gets trained.
type Gatherer interface {
	// Gather runs one op's sweep under the caller's context: cancelling
	// ctx abandons the sweep (a distributed gather stops dispatching and
	// in-flight units are released to their workers' drain handling).
	Gather(ctx context.Context, cfg GatherConfig) ([]ShapeTimings, error)
}

// LocalGatherer is the in-process Gatherer: the plain Gather call. The
// context is consulted between measurements only — a single kernel timing
// is not interruptible.
type LocalGatherer struct{}

// Gather implements Gatherer by running the sweep on cfg.Timer locally.
func (LocalGatherer) Gather(ctx context.Context, cfg GatherConfig) ([]ShapeTimings, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return Gather(cfg)
}

// Gather samples NumShapes quasi-random shapes and times each at every
// candidate thread count with the configured operation's kernel.
func Gather(cfg GatherConfig) ([]ShapeTimings, error) {
	if cfg.Timer == nil {
		return nil, fmt.Errorf("core: GatherConfig.Timer is nil")
	}
	if cfg.NumShapes < 1 {
		return nil, fmt.Errorf("core: NumShapes %d < 1", cfg.NumShapes)
	}
	shapes, err := SampleOpShapes(cfg.Domain, cfg.Seed, cfg.Op, 0, cfg.NumShapes)
	if err != nil {
		return nil, err
	}
	return MeasureSweep(cfg.Timer, cfg.Op, shapes, cfg.Candidates, cfg.Iters)
}

// SampleOpShapes draws count in-domain shapes of the op's sweep, starting at
// the given index of the deterministic (domain, seed) accepted-sample stream
// and mapped through the op's canonical feature triple. It is the shared
// shape source of the local and distributed gathers: unit (start, count)
// slices partition the exact sequence the single-node sweep walks.
func SampleOpShapes(dom sampling.Domain, seed int64, op ops.Op, start, count int) ([]sampling.Shape, error) {
	if !op.Valid() {
		return nil, fmt.Errorf("core: unknown op %v", op)
	}
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("core: negative shape range [%d, %d)", start, start+count)
	}
	sampler, err := sampling.NewSampler(dom, seed)
	if err != nil {
		return nil, err
	}
	sampler.Skip(start)
	canon := op.Spec().Canon
	out := make([]sampling.Shape, count)
	for i := range out {
		out[i] = canon(sampler.Next())
	}
	return out, nil
}

// MeasureSweep times every shape at every candidate thread count with the
// op's kernel on the given timer, averaging iters repetitions per
// configuration (minimum 1; zero selects the paper's 10). It is the inner
// loop of Gather, exported so distributed workers execute their units
// through exactly the code path of the single-node sweep.
func MeasureSweep(timer simtime.Timer, op ops.Op, shapes []sampling.Shape, candidates []int, iters int) ([]ShapeTimings, error) {
	if timer == nil {
		return nil, fmt.Errorf("core: MeasureSweep timer is nil")
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no candidate thread counts")
	}
	if iters < 1 {
		iters = 10
	}
	measure, err := measureFunc(timer, op, iters)
	if err != nil {
		return nil, err
	}
	out := make([]ShapeTimings, 0, len(shapes))
	for _, sh := range shapes {
		st := ShapeTimings{Shape: sh, Times: make([]CandidateTime, 0, len(candidates))}
		for _, p := range candidates {
			st.Times = append(st.Times, CandidateTime{Threads: p, Seconds: measure(sh, p)})
		}
		out = append(out, st)
	}
	return out, nil
}

// measureFunc resolves the timing closure for the op: GEMM keeps the paper's
// Timer path byte-for-byte, other ops go through the per-op timing
// interfaces of simtime.
func measureFunc(timer simtime.Timer, op ops.Op, iters int) (func(sh sampling.Shape, threads int) float64, error) {
	if !op.Valid() {
		return nil, fmt.Errorf("core: unknown op %v", op)
	}
	if op == ops.GEMM {
		if mt, ok := timer.(meanTimer); ok {
			return func(sh sampling.Shape, p int) float64 {
				return mt.MeasureMean(sh.M, sh.K, sh.N, p, iters)
			}, nil
		}
		return func(sh sampling.Shape, p int) float64 {
			var secs float64
			for r := 0; r < iters; r++ {
				secs += timer.Time(sh.M, sh.K, sh.N, p)
			}
			return secs / float64(iters)
		}, nil
	}
	if mt, ok := timer.(simtime.MeanOpTimer); ok {
		return func(sh sampling.Shape, p int) float64 {
			return mt.MeasureMeanOp(op, sh.M, sh.K, sh.N, p, iters)
		}, nil
	}
	if ot, ok := timer.(simtime.OpTimer); ok {
		return func(sh sampling.Shape, p int) float64 {
			var secs float64
			for r := 0; r < iters; r++ {
				secs += ot.TimeOp(op, sh.M, sh.K, sh.N, p)
			}
			return secs / float64(iters)
		}, nil
	}
	return nil, fmt.Errorf("core: timer %T cannot time op %v", timer, op)
}

// Records flattens shape timings into per-(shape, threads) training records.
func Records(data []ShapeTimings) []features.Record {
	var recs []features.Record
	for _, st := range data {
		for _, ct := range st.Times {
			recs = append(recs, features.Record{Shape: st.Shape, Threads: ct.Threads, Seconds: ct.Seconds})
		}
	}
	return recs
}

// OpModel is one operation's trained artefact: the preprocessing pipeline
// and runtime-prediction regressor of Fig 2, plus bookkeeping.
type OpModel struct {
	Kind     string
	Model    ml.Regressor
	Pipeline *preprocess.Pipeline
	// Columns restricts the Table II feature set (nil = all features); used
	// by the feature-set ablation.
	Columns     []string
	EvalSeconds float64 // measured model-evaluation latency per selection

	colOnce sync.Once
	colIdx  []int
}

// featureIndices resolves Columns into indices of features.Columns().
func (m *OpModel) featureIndices() []int {
	//adsala:ignore zeroalloc Once.Do inlines its fast path so the literal never escapes; pinned by TestRankOpIntoZeroAlloc
	m.colOnce.Do(func() {
		if len(m.Columns) == 0 {
			return
		}
		all := features.Columns()
		for _, want := range m.Columns {
			for i, c := range all {
				if c == want {
					m.colIdx = append(m.colIdx, i)
					break
				}
			}
		}
	})
	return m.colIdx
}

// rawRow builds the (possibly column-restricted) raw feature row.
func (m *OpModel) rawRow(mm, k, n, threads int) []float64 {
	full := features.Row(mm, k, n, threads)
	idx := m.featureIndices()
	if idx == nil {
		return full
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = full[j]
	}
	return out
}

// predictSeconds is the uncached single-configuration estimate.
func (m *OpModel) predictSeconds(mm, k, n, threads int) float64 {
	row := m.Pipeline.Transform(m.rawRow(mm, k, n, threads))
	return m.Pipeline.UntransformTarget(m.Model.Predict(row))
}

// Library is the deployable ADSALA artefact: a versioned per-operation
// bundle of trained models plus the candidate thread counts to rank. The
// GEMM model is always present (the paper's workflow) and serves as the
// fallback for operations without a model of their own, so a library
// trained pre-registry keeps answering every op exactly as before.
type Library struct {
	Platform   string
	Candidates []int

	// models is indexed by ops.Op; nil entries fall back to GEMM.
	models []*OpModel

	// format is the artefact format version this library was loaded from
	// (0 for libraries built in-process, which save as the current
	// version). Read through Format.
	format int
}

// Format returns the artefact format version of the library: the version
// of the file it was loaded from, or the current save format for a
// library trained in-process.
func (l *Library) Format() int {
	if l.format == 0 {
		return formatVersion
	}
	return l.format
}

// SetModel installs the trained model for an operation.
func (l *Library) SetModel(op ops.Op, m *OpModel) {
	for len(l.models) <= int(op) {
		l.models = append(l.models, nil)
	}
	l.models[op] = m
}

// ModelFor returns the operation's model, falling back to the GEMM model
// when the op has none of its own. Nil only on an empty (untrained) bundle.
func (l *Library) ModelFor(op ops.Op) *OpModel {
	if int(op) < len(l.models) && l.models[op] != nil {
		return l.models[op]
	}
	if int(ops.GEMM) < len(l.models) {
		return l.models[ops.GEMM]
	}
	return nil
}

// HasModel reports whether the op has a model of its own (no fallback).
func (l *Library) HasModel(op ops.Op) bool {
	return int(op) < len(l.models) && l.models[op] != nil
}

// TrainedOps returns the operations with a model of their own, in op order.
func (l *Library) TrainedOps() []ops.Op {
	var out []ops.Op
	for i, m := range l.models {
		if m != nil {
			out = append(out, ops.Op(i))
		}
	}
	return out
}

// ModelKind returns the selected model family of the primary (GEMM) model.
func (l *Library) ModelKind() string {
	if m := l.ModelFor(ops.GEMM); m != nil {
		return m.Kind
	}
	return ""
}

// EvalSeconds returns the measured model-evaluation latency per selection of
// the primary (GEMM) model.
func (l *Library) EvalSeconds() float64 {
	if m := l.ModelFor(ops.GEMM); m != nil {
		return m.EvalSeconds
	}
	return 0
}

// Scratch holds the reusable buffers of one allocation-free ranking pass,
// sized for every model in the bundle. A Scratch is not safe for concurrent
// use; pool one per goroutine (the serve engine keeps them in a sync.Pool).
type Scratch struct {
	raw        []float64 // full Table II feature row
	restricted []float64 // column-restricted row (ablation libraries)
	buf        []float64 // pipeline output row fed to the model
}

// NewScratch returns ranking buffers sized for this library (the maximum
// over its per-op models, so one scratch serves any op).
func (l *Library) NewScratch() *Scratch {
	maxKeep, maxIdx := 0, 0
	for _, m := range l.models {
		if m == nil {
			continue
		}
		if n := len(m.Pipeline.Keep); n > maxKeep {
			maxKeep = n
		}
		if n := len(m.featureIndices()); n > maxIdx {
			maxIdx = n
		}
	}
	s := &Scratch{
		raw: make([]float64, len(features.Columns())),
		buf: make([]float64, maxKeep),
	}
	if maxIdx > 0 {
		s.restricted = make([]float64, maxIdx)
	}
	return s
}

// RankOpInto ranks every candidate thread count by the op's predicted
// runtime using the scratch buffers and returns the index of the argmin in
// Candidates. When scores is non-nil it must have len(Candidates) and
// receives the predicted wall time in seconds for each candidate (target
// untransformed). The library itself is read-only here, so concurrent calls
// with distinct scratches are safe.
//
//adsala:zeroalloc
func (l *Library) RankOpInto(op ops.Op, m, k, n int, s *Scratch, scores []float64) int {
	mod := l.ModelFor(op)
	idx := mod.featureIndices()
	buf := s.buf[:len(mod.Pipeline.Keep)]
	bestIdx, bt := 0, 0.0
	for i, cand := range l.Candidates {
		features.RowInto(m, k, n, cand, s.raw)
		row := s.raw
		if idx != nil {
			row = s.restricted[:len(idx)]
			for j, jj := range idx {
				row[j] = s.raw[jj]
			}
		}
		mod.Pipeline.TransformInto(row, buf)
		pred := mod.Model.Predict(buf)
		if scores != nil {
			scores[i] = mod.Pipeline.UntransformTarget(pred)
		}
		if i == 0 || pred < bt {
			bestIdx, bt = i, pred
		}
	}
	return bestIdx
}

// RankInto is RankOpInto for the primary GEMM model.
//
//adsala:zeroalloc
func (l *Library) RankInto(m, k, n int, s *Scratch, scores []float64) int {
	return l.RankOpInto(ops.GEMM, m, k, n, s, scores)
}

// OptimalThreadsOp ranks every candidate thread count by the op's predicted
// runtime and returns the argmin (§IV-A). This is the uncached path; use
// the serve engine on hot loops.
func (l *Library) OptimalThreadsOp(op ops.Op, m, k, n int) int {
	return l.Candidates[l.RankOpInto(op, m, k, n, l.NewScratch(), nil)]
}

// OptimalThreads is OptimalThreadsOp for GEMM.
func (l *Library) OptimalThreads(m, k, n int) int {
	return l.OptimalThreadsOp(ops.GEMM, m, k, n)
}

// PredictOpSeconds returns the op model's runtime estimate for one
// configuration.
func (l *Library) PredictOpSeconds(op ops.Op, m, k, n, threads int) float64 {
	return l.ModelFor(op).predictSeconds(m, k, n, threads)
}

// PredictOpSecondsInto is PredictOpSeconds evaluated through the scratch
// buffers — the allocation-free form, for hot paths that score a single
// configuration (the serving engine's measured-stream drift hook). The
// caller must hold a model for the op (ModelFor non-nil) and a Scratch
// sized for this library.
//
//adsala:zeroalloc
func (l *Library) PredictOpSecondsInto(op ops.Op, mm, k, n, threads int, s *Scratch) float64 {
	mod := l.ModelFor(op)
	features.RowInto(mm, k, n, threads, s.raw)
	row := s.raw
	if idx := mod.featureIndices(); idx != nil {
		row = s.restricted[:len(idx)]
		for j, jj := range idx {
			row[j] = s.raw[jj]
		}
	}
	buf := s.buf[:len(mod.Pipeline.Keep)]
	mod.Pipeline.TransformInto(row, buf)
	return mod.Pipeline.UntransformTarget(mod.Model.Predict(buf))
}

// PredictSeconds is PredictOpSeconds for GEMM.
func (l *Library) PredictSeconds(m, k, n, threads int) float64 {
	return l.PredictOpSeconds(ops.GEMM, m, k, n, threads)
}

// Predictor is the runtime-side wrapper (Fig 3): it remembers the last GEMM
// shape and skips re-evaluation when the same dimensions repeat, the common
// pattern of GEMM inside application loops (§III-C). Safe for concurrent use.
type Predictor struct {
	lib *Library

	mu                  sync.Mutex
	lastM, lastK, lastN int
	lastChoice          int
	valid               bool
	hits, misses        int64
	scratch             *Scratch
}

// NewPredictor returns a Predictor bound to the library.
func (l *Library) NewPredictor() *Predictor {
	return &Predictor{lib: l, scratch: l.NewScratch()}
}

// OptimalThreads returns the thread count to use for an m×k×n GEMM,
// re-using the cached decision when the shape matches the previous call.
func (p *Predictor) OptimalThreads(m, k, n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.valid && p.lastM == m && p.lastK == k && p.lastN == n {
		p.hits++
		return p.lastChoice
	}
	p.misses++
	best := p.lib.Candidates[p.lib.RankInto(m, k, n, p.scratch, nil)]
	p.lastM, p.lastK, p.lastN, p.lastChoice, p.valid = m, k, n, best, true
	return best
}

// CacheStats reports (hits, misses) of the repeated-shape cache.
func (p *Predictor) CacheStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Reset clears the cached decision (e.g. after a NUMA policy change).
func (p *Predictor) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.valid = false
}

// sortedCopy returns a sorted copy of xs (helper shared by train/report).
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
