package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sampling"
)

// PredictRequest is the JSON body of POST /predict (GET uses ?m=&k=&n=&op=).
// Op selects the operation kind by registry wire name ("gemm", "syrk",
// "syr2k"); empty means GEMM, so pre-op clients keep working. Symmetric
// updates pass the (n, k, n) triple of the output shape.
type PredictRequest struct {
	M  int    `json:"m"`
	K  int    `json:"k"`
	N  int    `json:"n"`
	Op string `json:"op,omitempty"`
}

// PredictResponse is the JSON answer of /predict.
type PredictResponse struct {
	M       int    `json:"m"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	Op      string `json:"op"`
	Threads int    `json:"threads"`
	// Fallback is true when the decision came from the deterministic
	// heuristic instead of a model — the degraded-mode tag of the
	// resilience contract (artefact holds no model for the op, or the
	// request deadline expired before ranking).
	Fallback bool `json:"fallback,omitempty"`
	// Candidates and PredictedMicros are present only when detail was
	// requested: the ranked thread counts and their predicted runtimes.
	Candidates      []int     `json:"candidates,omitempty"`
	PredictedMicros []float64 `json:"predicted_micros,omitempty"`
}

// BatchRequest is the JSON body of POST /batch.
type BatchRequest struct {
	Shapes []PredictRequest `json:"shapes"`
}

// BatchResponse is the JSON answer of /batch.
type BatchResponse struct {
	Threads []int `json:"threads"`
	// Fallback, when present, aligns with Threads and marks the decisions
	// answered by the deterministic heuristic instead of a model. Omitted
	// when every decision came from the cache or a model.
	Fallback []bool `json:"fallback,omitempty"`
}

// HealthResponse is the JSON answer of /healthz (and /livez). Status is
// "ok" when the daemon is ready to serve, "starting" before warm-up and
// snapshot restore complete, and "draining" once shutdown has begun; the
// latter two answer with 503 so load balancers stop routing, while /livez
// stays 200 for as long as the process can answer at all.
type HealthResponse struct {
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// FormatVersion is the on-disk format version of the loaded artefact
	// and Ops the operations it holds trained models for — enough for an
	// operator to tell a legacy v1 single-model artefact from a v2 bundle
	// without opening the file.
	FormatVersion int      `json:"format_version"`
	Ops           []string `json:"ops"`
	// Generation counts hot artefact reloads since boot (0 = still on the
	// boot artefact), so an operator can confirm a reload took effect even
	// when old and new artefacts share a format version.
	Generation int64 `json:"artefact_generation"`
	// Degraded is true when the drift monitor reports the model's windowed
	// prediction residuals past the configured threshold for at least one
	// op; DriftingOps lists the offenders. Degraded is not down: readiness
	// stays 200 (the daemon still serves; the model is stale, and /drift
	// has the details). Absent when drift monitoring is off.
	Degraded    bool     `json:"degraded,omitempty"`
	DriftingOps []string `json:"drifting_ops,omitempty"`
}

// endpointMetrics tracks request count and latency for one endpoint. The
// JSON /stats snapshot and the Prometheus exposition are both views over
// the same atomics (plus one shared latency histogram), so the two
// surfaces can never disagree about what the server did.
type endpointMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
	latency *obs.Histogram
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.count.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNS.Add(ns)
	if m.latency != nil {
		m.latency.Observe(ns)
	}
	for {
		cur := m.maxNS.Load()
		if ns <= cur || m.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointStats is the exported snapshot of one endpoint's metrics.
type EndpointStats struct {
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	MeanMicros float64 `json:"mean_micros"`
	MaxMicros  float64 `json:"max_micros"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	st := EndpointStats{Requests: m.count.Load(), Errors: m.errors.Load()}
	if st.Requests > 0 {
		st.MeanMicros = float64(m.totalNS.Load()) / float64(st.Requests) / 1e3
		st.MaxMicros = float64(m.maxNS.Load()) / 1e3
	}
	return st
}

// register exposes the endpoint's counters and latency histogram under the
// given route label.
func (m *endpointMetrics) register(r *obs.Registry, route string) {
	lbl := obs.L("route", route)
	r.CounterFunc("adsala_http_requests_total",
		"HTTP requests handled, by route and result.",
		func() float64 {
			// Errors loaded first so ok = count - errors never dips negative
			// under concurrent traffic.
			e := m.errors.Load()
			return float64(m.count.Load() - e)
		}, lbl, obs.L("result", "ok"))
	r.CounterFunc("adsala_http_requests_total",
		"HTTP requests handled, by route and result.",
		func() float64 { return float64(m.errors.Load()) },
		lbl, obs.L("result", "error"))
	r.RegisterHistogram("adsala_http_request_seconds",
		"HTTP request latency, by route.", m.latency, lbl)
}

// StatsResponse is the JSON answer of /stats.
type StatsResponse struct {
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// Models lists the per-op model bundle: wire name → selected model
	// family, for every op with a trained model of its own.
	Models map[string]string        `json:"models,omitempty"`
	Engine Stats                    `json:"engine"`
	HTTP   map[string]EndpointStats `json:"http"`
}

// MaxBatchShapes bounds one /batch request (guards against unbounded
// request bodies monopolising the worker pool).
const MaxBatchShapes = 16384

// Limits is the overload-protection configuration of a Server: bounded
// in-flight admission with a short wait queue on the prediction endpoints,
// plus a per-request deadline threaded into the engine. Probes, /stats and
// /metrics are never limited — an overloaded daemon must stay observable.
type Limits struct {
	// MaxInFlight bounds concurrently admitted /predict + /batch requests.
	// 0 selects the default (8×GOMAXPROCS); negative disables admission
	// control entirely.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; arrivals
	// beyond it shed immediately with 429. 0 selects the default
	// (MaxInFlight); negative means no queue (shed as soon as full).
	MaxQueue int
	// QueueWait is how long a queued request waits for a slot before it
	// sheds with 429 (default 50ms) — short on purpose: a deep slow queue
	// is worse than a fast no.
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline threaded into the engine
	// (default 2s; negative disables). A request that exhausts it mid-rank
	// degrades to the heuristic answer instead of erroring.
	RequestTimeout time.Duration
}

// withDefaults resolves the zero values.
func (l Limits) withDefaults() Limits {
	if l.MaxInFlight == 0 {
		l.MaxInFlight = 8 * runtime.GOMAXPROCS(0)
	}
	if l.MaxQueue == 0 {
		l.MaxQueue = l.MaxInFlight
	}
	if l.QueueWait <= 0 {
		l.QueueWait = 50 * time.Millisecond
	}
	if l.RequestTimeout == 0 {
		l.RequestTimeout = 2 * time.Second
	}
	return l
}

// limiter is the admission gate: a semaphore of in-flight slots plus a
// counted short wait queue.
type limiter struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
	wait     time.Duration
}

func newLimiter(l Limits) *limiter {
	if l.MaxInFlight < 0 {
		return nil
	}
	maxQueue := int64(l.MaxQueue)
	if l.MaxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		sem:      make(chan struct{}, l.MaxInFlight),
		maxQueue: maxQueue,
		wait:     l.QueueWait,
	}
}

// acquire admits the request or reports shed. The wait queue is bounded by
// count and by time, so admission never queues unboundedly: beyond
// maxQueue waiters, or after QueueWait, the caller sheds.
func (l *limiter) acquire(ctx context.Context) bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return false
	}
	defer l.queued.Add(-1)
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (l *limiter) release() { <-l.sem }

// ReloadConfig wires hot artefact reload into a Server.
type ReloadConfig struct {
	// Load produces the replacement library (typically re-reading the
	// artefact path the daemon booted from). Required.
	Load func() (*core.Library, error)
	// Token authenticates POST /admin/reload (Authorization: Bearer <token>
	// or X-Adsala-Admin-Token). Empty leaves the endpoint unmounted —
	// reloads then happen only through Server.Reload (the SIGHUP path).
	Token string
	// Warm, when non-nil, re-warms the engine after a swap. It runs in the
	// background: readiness is never dropped for a reload.
	Warm func(*Engine)
	// Logf receives reload progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// ServerOption customises a Server at construction.
type ServerOption func(*Server)

// WithLimits sets the overload-protection limits (see Limits; the zero
// value selects the defaults, which are also applied when the option is
// omitted).
func WithLimits(l Limits) ServerOption {
	return func(s *Server) { s.limits = l }
}

// WithReload enables hot artefact reload (Server.Reload and, when a token
// is set, POST /admin/reload).
func WithReload(rc ReloadConfig) ServerOption {
	return func(s *Server) { s.reload = &rc }
}

// Server is the HTTP front end of the serving subsystem. It satisfies
// http.Handler; mount it directly or via an http.Server.
type Server struct {
	engine   *Engine
	mux      *http.ServeMux
	reg      *obs.Registry
	predict  endpointMetrics
	batch    endpointMetrics
	measured endpointMetrics

	// Overload protection: limits is resolved at construction; limit is
	// nil when admission control is disabled.
	limits Limits
	limit  *limiter
	shed   atomic.Int64 // requests answered 429
	panics atomic.Int64 // handler panics recovered to 500

	// Hot reload: nil when not configured. reloadMu serialises swaps so
	// two concurrent reloads cannot interleave their load/swap pairs.
	reload   *ReloadConfig
	reloadMu sync.Mutex

	// ready gates /healthz: NewServer starts ready (an engine implies a
	// loaded artefact), the daemon flips it false while restoring
	// snapshots / warming and again when shutdown begins. everReady is set
	// only by an explicit SetReady(true), so it distinguishes the two
	// unready phases for the health body: not-yet-ready is "starting",
	// previously-ready is "draining".
	ready     atomic.Bool
	everReady atomic.Bool
}

// NewServer returns an HTTP handler exposing the engine at /predict,
// /batch, /stats, /healthz, /livez and /metrics. The server starts ready;
// use SetReady to gate traffic around warm-up and drain. Overload
// protection is on by default (see Limits); options adjust it, enable hot
// reload, and so on.
func NewServer(engine *Engine, opts ...ServerOption) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux(), reg: obs.NewRegistry()}
	for _, opt := range opts {
		opt(s)
	}
	s.limits = s.limits.withDefaults()
	s.limit = newLimiter(s.limits)
	s.predict.latency = obs.NewHistogram(1e-9)
	s.batch.latency = obs.NewHistogram(1e-9)
	s.measured.latency = obs.NewHistogram(1e-9)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/measured", s.handleMeasured)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/drift", s.handleDrift)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/livez", s.handleLivez)
	s.mux.Handle("/metrics", s.reg.Handler())
	if s.reload != nil && s.reload.Token != "" {
		s.mux.HandleFunc("/admin/reload", s.handleAdminReload)
	}

	engine.RegisterMetrics(s.reg)
	obs.RegisterProcessMetrics(s.reg)
	s.predict.register(s.reg, "predict")
	s.batch.register(s.reg, "batch")
	s.measured.register(s.reg, "measured")
	s.reg.GaugeFunc("adsala_serve_ready",
		"1 when the daemon is accepting traffic, 0 while starting or draining.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("adsala_serve_artefact_format_version",
		"On-disk format version of the loaded artefact.",
		func() float64 { return float64(engine.Library().Format()) })
	s.reg.CounterFunc("adsala_serve_shed_total",
		"Requests shed with 429 by overload protection.",
		func() float64 { return float64(s.shed.Load()) })
	s.reg.CounterFunc("adsala_serve_panics_total",
		"Handler panics recovered to a 500 answer.",
		func() float64 { return float64(s.panics.Load()) })
	if s.limit != nil {
		s.reg.GaugeFunc("adsala_serve_inflight_requests",
			"Prediction requests currently admitted.",
			func() float64 { return float64(len(s.limit.sem)) })
		s.reg.GaugeFunc("adsala_serve_queued_requests",
			"Prediction requests waiting for an in-flight slot.",
			func() float64 { return float64(s.limit.queued.Load()) })
	}

	// Ready by construction (the engine implies a loaded artefact), but
	// deliberately not via SetReady: a daemon that immediately flips
	// readiness off for its restore/warm-up phase should report "starting",
	// not "draining".
	s.ready.Store(true)
	return s
}

// Engine returns the prediction engine behind the server.
func (s *Server) Engine() *Engine { return s.engine }

// Registry returns the server's metrics registry (served at /metrics), so
// daemons can attach process-level instruments alongside the engine's.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetReady flips the /healthz readiness gate. Daemons call SetReady(false)
// before long restore/warm-up phases and at the start of graceful
// shutdown — before the listener closes — so probes see the drain.
func (s *Server) SetReady(ready bool) {
	s.ready.Store(ready)
	if ready {
		s.everReady.Store(true)
	}
}

// Ready reports whether the server currently answers /healthz with 200.
func (s *Server) Ready() bool { return s.ready.Load() }

// EnablePprof mounts net/http/pprof under /debug/pprof/ (the shared
// obs.MountPprof wiring). Off by default: profiling endpoints expose
// internals and cost CPU, so daemons gate this behind a flag.
func (s *Server) EnablePprof() {
	obs.MountPprof(s.mux)
}

// ServeHTTP implements http.Handler. Every route runs under the
// panic-recovery middleware: a handler panic answers 500 JSON and advances
// the panics counter instead of killing the daemon's connection goroutine
// silently mid-response (net/http would otherwise log and drop it, and a
// panic in shared state could cascade). http.ErrAbortHandler is re-raised —
// it is net/http's sanctioned way to sever a connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.panics.Add(1)
		// Best effort: if the handler already wrote headers this is a
		// no-op on the status and appends to the body of a torn response
		// the client will fail to decode — still strictly better than a
		// silent hang-up.
		writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
	}()
	s.mux.ServeHTTP(w, r)
}

// admit runs the overload gate for one prediction request: true means
// proceed (the caller must defer s.release()). On shed it writes the 429
// answer — JSON body plus a Retry-After header — and counts it.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.limit == nil {
		return true
	}
	if s.limit.acquire(r.Context()) {
		return true
	}
	s.shed.Add(1)
	// Retry-After is whole seconds; round the queue wait up to 1s so a
	// compliant client backs off for at least the shed horizon.
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, shedResponse{
		Error:        "overloaded: in-flight limit reached",
		RetryAfterMS: 1000,
	})
	return false
}

func (s *Server) release() {
	if s.limit != nil {
		s.limit.release()
	}
}

// shedResponse is the 429 JSON body of a shed request.
type shedResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// requestCtx derives the per-request deadline context.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.limits.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.limits.RequestTimeout)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parsePredict extracts a shape and operation kind from either query
// parameters (GET) or a JSON body (POST).
func parsePredict(r *http.Request) (PredictRequest, Op, error) {
	var req PredictRequest
	switch r.Method {
	case http.MethodGet:
		for _, f := range []struct {
			name string
			dst  *int
		}{{"m", &req.M}, {"k", &req.K}, {"n", &req.N}} {
			v, err := strconv.Atoi(r.URL.Query().Get(f.name))
			if err != nil {
				return req, 0, fmt.Errorf("query parameter %q: want a positive integer", f.name)
			}
			*f.dst = v
		}
		req.Op = r.URL.Query().Get("op")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, 0, fmt.Errorf("decode body: %v", err)
		}
	default:
		return req, 0, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.M < 1 || req.K < 1 || req.N < 1 {
		return req, 0, fmt.Errorf("dimensions must be positive, got %dx%dx%d", req.M, req.K, req.N)
	}
	op, err := ParseOp(req.Op)
	if err != nil {
		return req, 0, err
	}
	return req, op, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.predict.observe(time.Since(start), failed) }()

	req, op, err := parsePredict(r)
	if err != nil {
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
		}
		writeError(w, status, "%v", err)
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	resp := PredictResponse{M: req.M, K: req.K, N: req.N, Op: op.String()}
	if r.URL.Query().Get("detail") == "1" {
		scores, best := s.engine.RankOp(op, req.M, req.K, req.N)
		resp.Threads = best
		resp.Candidates = s.engine.Candidates()
		resp.PredictedMicros = make([]float64, len(scores))
		for i, sec := range scores {
			resp.PredictedMicros[i] = sec * 1e6
		}
	} else {
		resp.Threads, resp.Fallback = s.engine.PredictOpCtx(ctx, op, req.M, req.K, req.N)
	}
	failed = false
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.batch.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Shapes) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Shapes) > MaxBatchShapes {
		writeError(w, http.StatusBadRequest, "batch of %d shapes exceeds limit %d", len(req.Shapes), MaxBatchShapes)
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// Mixed-op batches are split into one engine batch per registered
	// operation (the dedup and worker fan-out happen per op); slots maps
	// each sub-batch entry back to its request index. The split is sized by
	// the registry, so new ops flow through without touching this handler.
	shapes := make([][]sampling.Shape, ops.NumOps())
	slots := make([][]int, ops.NumOps())
	for i, sh := range req.Shapes {
		if sh.M < 1 || sh.K < 1 || sh.N < 1 {
			writeError(w, http.StatusBadRequest, "shape %d: dimensions must be positive, got %dx%dx%d", i, sh.M, sh.K, sh.N)
			return
		}
		op, err := ParseOp(sh.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, "shape %d: %v", i, err)
			return
		}
		shapes[op] = append(shapes[op], sampling.Shape{M: sh.M, K: sh.K, N: sh.N})
		slots[op] = append(slots[op], i)
	}
	threads := make([]int, len(req.Shapes))
	var fallback []bool
	for op, batch := range shapes {
		if len(batch) == 0 {
			continue
		}
		vals, fbs := s.engine.PredictBatchOpCtx(ctx, Op(op), batch, nil)
		for j, t := range vals {
			threads[slots[op][j]] = t
			if fbs != nil && fbs[j] {
				if fallback == nil {
					fallback = make([]bool, len(req.Shapes))
				}
				fallback[slots[op][j]] = true
			}
		}
	}
	failed = false
	writeJSON(w, http.StatusOK, BatchResponse{Threads: threads, Fallback: fallback})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	lib := s.engine.Library()
	models := make(map[string]string)
	for _, op := range lib.TrainedOps() {
		models[op.String()] = lib.ModelFor(op).Kind
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Platform: lib.Platform,
		Model:    lib.ModelKind(),
		Models:   models,
		Engine:   s.engine.Stats(),
		HTTP: map[string]EndpointStats{
			"predict":  s.predict.snapshot(),
			"batch":    s.batch.snapshot(),
			"measured": s.measured.snapshot(),
		},
	})
}

// healthBody assembles the shared health payload.
func (s *Server) healthBody(ready bool) HealthResponse {
	lib := s.engine.Library()
	status := "ok"
	if !ready {
		status = "starting"
		if s.everReady.Load() {
			status = "draining"
		}
	}
	trained := lib.TrainedOps()
	names := make([]string, len(trained))
	for i, op := range trained {
		names[i] = op.String()
	}
	body := HealthResponse{
		Status:        status,
		Ready:         ready,
		Platform:      lib.Platform,
		Model:         lib.ModelKind(),
		FormatVersion: lib.Format(),
		Ops:           names,
		Generation:    s.engine.Generation(),
	}
	if mon := s.engine.DriftMonitor(); mon != nil {
		body.DriftingOps = mon.DriftingOps()
		body.Degraded = len(body.DriftingOps) > 0
	}
	return body
}

// Reload swaps the served artefact through the configured ReloadConfig:
// load the replacement library, swap it into the engine atomically (the
// decision cache resets), and kick the background re-warm. Readiness is
// never dropped — requests keep answering against the old artefact until
// the swap lands and against the new one after, with cache misses ranked
// fresh while the warm pass refills. Serialised: concurrent reloads apply
// one at a time. Returns the post-swap health body (the /admin/reload
// answer and what SIGHUP handlers log).
func (s *Server) Reload() (HealthResponse, error) {
	if s.reload == nil || s.reload.Load == nil {
		return HealthResponse{}, fmt.Errorf("serve: reload is not configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	logf := s.reload.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	lib, err := s.reload.Load()
	if err != nil {
		// The old artefact keeps serving — a failed load must not degrade
		// a healthy daemon.
		logf("reload failed (still serving generation %d): %v", s.engine.Generation(), err)
		return HealthResponse{}, err
	}
	s.engine.SwapLibrary(lib)
	logf("reloaded artefact: generation %d, format v%d, platform %s",
		s.engine.Generation(), lib.Format(), lib.Platform)
	if s.reload.Warm != nil {
		go s.reload.Warm(s.engine)
	}
	return s.healthBody(s.ready.Load()), nil
}

// authorizedReload checks the reload token (Authorization: Bearer <token>
// or X-Adsala-Admin-Token) in constant time.
func (s *Server) authorizedReload(r *http.Request) bool {
	token := s.reload.Token
	got := r.Header.Get("X-Adsala-Admin-Token")
	if got == "" {
		const prefix = "Bearer "
		if auth := r.Header.Get("Authorization"); len(auth) > len(prefix) && auth[:len(prefix)] == prefix {
			got = auth[len(prefix):]
		}
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// handleAdminReload is POST /admin/reload: authenticated hot artefact
// swap. Mounted only when a ReloadConfig with a token was supplied.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if !s.authorizedReload(r) {
		writeError(w, http.StatusUnauthorized, "missing or invalid reload token")
		return
	}
	body, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz is the readiness probe: 200 only when the daemon should
// receive traffic, 503 while starting or draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := s.ready.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, s.healthBody(ready))
}

// handleLivez is the liveness probe: 200 whenever the process can answer,
// ready or not.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthBody(s.ready.Load()))
}
