package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// WindowedMoments is the sliding-window variant of Moments: a ring of
// sub-window slots, each holding atomically updated running sums, covering
// the trailing window of observations. Adding is lock-free and
// allocation-free (a handful of CAS loops on fixed atomics, in the same
// spirit as Histogram.Observe), so it can sit on the serving engine's
// measured hot path; the footprint is constant — slots × one cache line —
// regardless of traffic.
//
// Each slot aggregates one sub-window of window/slots duration. MomentsAt
// reconstructs a Moments per live slot from its sums (m2 = Σx² − (Σx)²/n)
// and folds them with Moments.Merge, so merging the sub-windows equals
// aggregating the whole window directly, up to floating-point rounding —
// the merge-equals-whole contract the tests pin. Observations older than
// the window are dropped; slots whose sub-window has expired are recycled
// in place by the first Add that lands in their ring position.
//
// Concurrency is best-effort at sub-window boundaries, which is the right
// trade for a monitor: an Add racing a slot recycle may be dropped (bounded
// retries, never a spin forever), and a snapshot racing a recycle may
// momentarily misread one slot — the next scrape self-corrects. No
// observation is ever double-counted into two slots.
type WindowedMoments struct {
	slotNanos int64
	slots     []windowSlot
}

// windowSlot is one sub-window's lock-free aggregation state. epoch is the
// 1-based sub-window index the slot currently holds (0 = never used;
// negative = mid-recycle for sub-window −epoch). Sums store float64 bits,
// updated with the same CAS-add loop as Gauge.Add.
type windowSlot struct {
	epoch atomic.Int64
	n     atomic.Int64
	sum   atomic.Uint64
	sumsq atomic.Uint64
	min   atomic.Uint64
	max   atomic.Uint64
}

// NewWindowedMoments returns a window covering the trailing `window`
// duration with the given number of ring slots (sub-windows). A
// non-positive window selects one minute; slots is clamped to [1, 1024]
// with 8 as the zero-value default.
func NewWindowedMoments(window time.Duration, slots int) *WindowedMoments {
	if window <= 0 {
		window = time.Minute
	}
	if slots == 0 {
		slots = 8
	}
	if slots < 1 {
		slots = 1
	}
	if slots > 1024 {
		slots = 1024
	}
	slotNanos := window.Nanoseconds() / int64(slots)
	if slotNanos < 1 {
		slotNanos = 1
	}
	return &WindowedMoments{slotNanos: slotNanos, slots: make([]windowSlot, slots)}
}

// WindowNanos returns the covered duration in nanoseconds (slots × sub-window).
func (w *WindowedMoments) WindowNanos() int64 { return w.slotNanos * int64(len(w.slots)) }

// Slots returns the ring size.
func (w *WindowedMoments) Slots() int { return len(w.slots) }

// epochOf maps a timestamp to its 1-based sub-window index (0 is reserved
// for "slot never used"; negative timestamps clamp to the first epoch).
func (w *WindowedMoments) epochOf(ts int64) int64 {
	if ts < 0 {
		ts = 0
	}
	return ts/w.slotNanos + 1
}

// Add folds one observation in at timestamp ts (nanoseconds on the
// caller's clock — monotonic since some base for online use, record
// timestamps for replay). Observations older than the current window, or
// racing a slot recycle past the bounded retry budget, are dropped.
//
//adsala:zeroalloc
func (w *WindowedMoments) Add(ts int64, x float64) {
	e := w.epochOf(ts)
	s := &w.slots[int(e%int64(len(w.slots)))]
	for i := 0; i < 128; i++ {
		cur := s.epoch.Load()
		switch {
		case cur == e:
			s.add(x)
			return
		case cur > e || -cur > e:
			// The ring position was already recycled for a newer sub-window:
			// this observation is older than the window. Drop it.
			return
		case cur < 0:
			// Another Add is mid-recycle for this (or an older) sub-window;
			// retry until it publishes.
			continue
		default:
			// Stale positive epoch (or 0 = never used): elect to recycle.
			// Mark the slot mid-recycle, zero the sums, then publish the new
			// epoch — adders for e wait in the cur<0 branch meanwhile.
			if s.epoch.CompareAndSwap(cur, -e) {
				s.n.Store(0)
				s.sum.Store(0)
				s.sumsq.Store(0)
				s.min.Store(floatBits(math.Inf(1)))
				s.max.Store(floatBits(math.Inf(-1)))
				s.epoch.Store(e)
				s.add(x)
				return
			}
		}
	}
}

// add folds x into the slot's sums.
//
//adsala:zeroalloc
func (s *windowSlot) add(x float64) {
	addFloatBits(&s.sum, x)
	addFloatBits(&s.sumsq, x*x)
	casFloatMin(&s.min, x)
	casFloatMax(&s.max, x)
	s.n.Add(1)
}

// MomentsAt merges every slot still inside the window ending at ts into
// one Moments — the read side, off the hot path. The current (partial)
// sub-window is included, so the effective span is between window−slot and
// window. Safe for concurrent use with Add.
func (w *WindowedMoments) MomentsAt(ts int64) Moments {
	hi := w.epochOf(ts)
	lo := hi - int64(len(w.slots)) + 1
	var out Moments
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < lo || e > hi {
			continue
		}
		n := s.n.Load()
		if n == 0 {
			continue
		}
		sum := bitsFloat(s.sum.Load())
		sumsq := bitsFloat(s.sumsq.Load())
		mean := sum / float64(n)
		m2 := sumsq - sum*sum/float64(n)
		if !(m2 > 0) { // catches negative rounding residue and NaN
			m2 = 0
		}
		out.Merge(Moments{n: n, mean: mean, m2: m2,
			min: bitsFloat(s.min.Load()), max: bitsFloat(s.max.Load())})
	}
	return out
}

// addFloatBits adds d to a float64 stored as bits, with the Gauge.Add CAS
// loop.
//
//adsala:zeroalloc
func addFloatBits(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// casFloatMin lowers a float64-bits atomic to x when x is smaller.
//
//adsala:zeroalloc
func casFloatMin(a *atomic.Uint64, x float64) {
	for {
		old := a.Load()
		if x >= bitsFloat(old) {
			return
		}
		if a.CompareAndSwap(old, floatBits(x)) {
			return
		}
	}
}

// casFloatMax raises a float64-bits atomic to x when x is larger.
//
//adsala:zeroalloc
func casFloatMax(a *atomic.Uint64, x float64) {
	for {
		old := a.Load()
		if x <= bitsFloat(old) {
			return
		}
		if a.CompareAndSwap(old, floatBits(x)) {
			return
		}
	}
}
