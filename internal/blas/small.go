package blas

// Small-shape fast path: below a FLOP threshold the packed algorithm's
// panel copies, buffer setup and phase barriers dominate the useful work,
// so tiny GEMMs run a single-threaded blocked loop directly on the operand
// views instead. The loop order is chosen per transB so the innermost loop
// always streams a contiguous row of B (or of C), which is what the packed
// layout would have bought anyway at these sizes.

// smallShapeLimit bounds m·n·k for the no-packing path (tuned on the
// development machine: the crossover sits between 32³ and 48³; see
// BenchmarkSGEMMTiny). A variable rather than a constant so the test matrix
// can force either path.
var smallShapeLimit = 40 * 40 * 40

// smallShape reports whether an m×n×k problem should skip packing. It must
// depend only on the dimensions — never on the thread count — so that
// results stay bit-identical across thread counts.
func smallShape(m, n, k int) bool {
	return m*n*k <= smallShapeLimit
}

// smallGemm computes C ← alpha·op(A)·op(B) + beta·C without packing.
// Callers have already handled the degenerate m/n/k = 0 and alpha = 0 cases.
func smallGemm[T float32 | float64](transA, transB bool, alpha T, a, b view[T], beta T, c view[T], m, n, k int) {
	if !transB {
		// AXPY form: C(i, :) accumulates alpha·op(A)(i, p) · B(p, :), with
		// the inner loop contiguous over both B's row and C's row.
		for i := 0; i < m; i++ {
			crow := c.data[i*c.stride : i*c.stride+n]
			if beta == 0 {
				for j := range crow {
					crow[j] = 0
				}
			} else if beta != 1 {
				for j := range crow {
					crow[j] *= beta
				}
			}
			for p := 0; p < k; p++ {
				var aip T
				if transA {
					aip = alpha * a.data[p*a.stride+i]
				} else {
					aip = alpha * a.data[i*a.stride+p]
				}
				brow := b.data[p*b.stride : p*b.stride+n]
				for j, bv := range brow {
					crow[j] += aip * bv
				}
			}
		}
		return
	}
	// Dot form: op(B)(p, j) = B(j, p), so B's row j is contiguous over p.
	for i := 0; i < m; i++ {
		crow := c.data[i*c.stride : i*c.stride+n]
		for j := 0; j < n; j++ {
			brow := b.data[j*b.stride : j*b.stride+k]
			var sum T
			if transA {
				for p, bv := range brow {
					sum += a.data[p*a.stride+i] * bv
				}
			} else {
				arow := a.data[i*a.stride : i*a.stride+k]
				for p, av := range arow {
					sum += av * brow[p]
				}
			}
			if beta == 0 {
				crow[j] = alpha * sum
			} else {
				crow[j] = alpha*sum + beta*crow[j]
			}
		}
	}
}
