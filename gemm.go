package adsala

// Gemm is the legacy GEMM-only front end, kept as a thin wrapper over the
// generic BLAS facade.
//
// Deprecated: use Library.BLAS(), which serves every registered operation
// through one shared engine. Gemm remains so pre-registry callers keep
// compiling; it shares the same engine (and therefore the same decision
// cache and statistics) as every other facade of its Library.
type Gemm struct {
	b *BLAS
}

// NewGemm returns a GEMM front end bound to the library's shared engine.
//
// Deprecated: use Library.BLAS().
func (l *Library) NewGemm() *Gemm { return &Gemm{b: l.BLAS()} }

// SetMaxLocalThreads overrides the local execution clamp (useful in tests).
func (g *Gemm) SetMaxLocalThreads(n int) { g.b.SetMaxLocalThreads(n) }

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision with the
// model-selected thread count.
func (g *Gemm) SGEMM(transA, transB bool, alpha float32, a, b *MatrixF32, beta float32, c *MatrixF32) error {
	return g.b.SGEMM(transA, transB, alpha, a, b, beta, c)
}

// DGEMM is the double-precision counterpart of SGEMM.
func (g *Gemm) DGEMM(transA, transB bool, alpha float64, a, b *MatrixF64, beta float64, c *MatrixF64) error {
	return g.b.DGEMM(transA, transB, alpha, a, b, beta, c)
}

// LastChoice reports the thread count a previous GEMM call (or prediction)
// selected for the given dimensions — a read-only peek of the shared
// decision cache. Returns 0 when the shape has not been selected yet.
func (g *Gemm) LastChoice(m, k, n int) int { return g.b.LastChoice(OpGEMM, m, k, n) }

// CacheStats reports (hits, misses) of the library's shared decision cache.
func (g *Gemm) CacheStats() (hits, misses int64) { return g.b.CacheStats() }
