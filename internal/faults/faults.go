// Package faults is the reusable fault-injection harness behind the chaos
// tests: composable http.RoundTripper and http.Handler middleware that
// inject latency, transport errors, connection drops, HTTP error statuses
// and partial (truncated) responses from a seeded, fully deterministic
// schedule.
//
// Determinism is the design constraint. Concurrent clients interleave
// non-deterministically, so a schedule driven by a shared RNG stream would
// make every chaos run unique. Instead each call is numbered by an atomic
// counter and its fault is derived by hashing (seed, call index): the i-th
// call through an injector always experiences the same fault no matter how
// goroutines interleave, and a failing chaos test replays exactly from its
// seed.
package faults

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Kind names one injected behaviour.
type Kind int

const (
	// None injects nothing: the call passes through untouched.
	None Kind = iota
	// Latency delays the call, then passes it through.
	Latency
	// Error fails the call at the transport layer (RoundTripper) or
	// answers with InjectStatus (Handler) — the dependency answered, badly.
	Error
	// Drop severs the connection: the RoundTripper returns a mid-flight
	// transport error, the Handler aborts the connection without a
	// response — the dependency vanished.
	Drop
	// Truncate serves a partial response body that ends early — the
	// dependency died mid-answer.
	Truncate
)

// String names the kind for logs and test failures.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan sets the per-call probabilities of each fault kind. Probabilities
// are evaluated in order (latency is independent and composes with the
// others; error/drop/truncate are mutually exclusive, first match wins), so
// ErrorP+DropP+TruncateP should stay ≤ 1.
type Plan struct {
	// LatencyP is the probability a call is delayed by Delay (composes
	// with any other fault on the same call).
	LatencyP float64
	// Delay is the injected latency (default 10ms when LatencyP > 0).
	Delay time.Duration
	// ErrorP is the probability of a transport error / error status.
	ErrorP float64
	// Status is the HTTP status a Handler answers on an Error fault
	// (default 500).
	Status int
	// DropP is the probability of a severed connection.
	DropP float64
	// TruncateP is the probability of a partial response.
	TruncateP float64
}

// Schedule decides the fault for one numbered call. Implementations must be
// safe for concurrent use.
type Schedule interface {
	// Decide returns the fault kinds for call i: delay composes with the
	// exclusive kind (None, Error, Drop or Truncate).
	Decide(call int64) (delay bool, kind Kind)
}

// seeded is the deterministic hash-based Schedule.
type seeded struct {
	seed int64
	plan Plan
}

// NewSeeded returns a Schedule deriving each call's fault from
// splitmix64(seed, call): deterministic per call index, lock-free, safe for
// any interleaving.
func NewSeeded(seed int64, plan Plan) Schedule {
	if plan.Delay <= 0 {
		plan.Delay = 10 * time.Millisecond
	}
	if plan.Status == 0 {
		plan.Status = http.StatusInternalServerError
	}
	return &seeded{seed: seed, plan: plan}
}

// unit hashes (seed, call, lane) to a float64 in [0, 1).
func (s *seeded) unit(call int64, lane uint64) float64 {
	x := uint64(s.seed)*0x9e3779b97f4a7c15 + uint64(call)*0xbf58476d1ce4e5b9 + lane*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func (s *seeded) Decide(call int64) (bool, Kind) {
	delay := s.unit(call, 1) < s.plan.LatencyP
	u := s.unit(call, 2)
	switch {
	case u < s.plan.ErrorP:
		return delay, Error
	case u < s.plan.ErrorP+s.plan.DropP:
		return delay, Drop
	case u < s.plan.ErrorP+s.plan.DropP+s.plan.TruncateP:
		return delay, Truncate
	}
	return delay, None
}

// Stats counts injected faults by kind — what the chaos tests assert
// against so a "survived the faults" pass cannot silently mean "no faults
// fired".
type Stats struct {
	Calls, Delays, Errors, Drops, Truncates atomic.Int64
}

// Fired reports whether at least one non-latency fault was injected.
func (s *Stats) Fired() bool {
	return s.Errors.Load()+s.Drops.Load()+s.Truncates.Load() > 0
}

func (s *Stats) count(delay bool, kind Kind) {
	s.Calls.Add(1)
	if delay {
		s.Delays.Add(1)
	}
	switch kind {
	case Error:
		s.Errors.Add(1)
	case Drop:
		s.Drops.Add(1)
	case Truncate:
		s.Truncates.Add(1)
	}
}

// DroppedError is the transport error a Drop fault surfaces client-side.
type DroppedError struct{ Call int64 }

func (e *DroppedError) Error() string {
	return fmt.Sprintf("faults: connection dropped (injected, call %d)", e.Call)
}

// InjectedError is the transport error an Error fault surfaces client-side.
type InjectedError struct{ Call int64 }

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: transport error (injected, call %d)", e.Call)
}

// Transport wraps an http.RoundTripper with fault injection. A nil next
// selects http.DefaultTransport. The returned transport numbers calls from
// 0 and records them in stats (which may be nil).
func Transport(next http.RoundTripper, sched Schedule, stats *Stats) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &transport{next: next, sched: sched, stats: stats}
}

type transport struct {
	next  http.RoundTripper
	sched Schedule
	stats *Stats
	calls atomic.Int64
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	call := t.calls.Add(1) - 1
	delay, kind := t.sched.Decide(call)
	t.stats.count(delay, kind)
	if delay {
		if err := sleepCtx(req.Context(), delayOf(t.sched)); err != nil {
			return nil, err
		}
	}
	switch kind {
	case Error:
		return nil, &InjectedError{Call: call}
	case Drop:
		return nil, &DroppedError{Call: call}
	case Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateResponse(resp), nil
	default:
		return t.next.RoundTrip(req)
	}
}

// truncateResponse halves the body and makes the read end in
// io.ErrUnexpectedEOF, the shape a torn TCP stream decodes into.
func truncateResponse(resp *http.Response) *http.Response {
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		blob = nil
	}
	half := blob[:len(blob)/2]
	resp.Body = io.NopCloser(&tornReader{r: bytes.NewReader(half)})
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp
}

// tornReader yields its bytes then fails with ErrUnexpectedEOF instead of a
// clean EOF, so JSON decoders see a torn stream, not a short document.
type tornReader struct{ r io.Reader }

func (t *tornReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Handler wraps an http.Handler with server-side fault injection. Error
// faults answer with the plan's status and a JSON error body; Drop faults
// abort the connection with no response (the client sees EOF); Truncate
// faults send roughly half of the real response then abort.
func Handler(next http.Handler, sched Schedule, stats *Stats) http.Handler {
	if stats == nil {
		stats = &Stats{}
	}
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		call := calls.Add(1) - 1
		delay, kind := sched.Decide(call)
		stats.count(delay, kind)
		if delay {
			_ = sleepCtx(r.Context(), delayOf(sched))
		}
		switch kind {
		case Error:
			status := http.StatusInternalServerError
			if s, ok := sched.(*seeded); ok {
				status = s.plan.Status
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"injected fault (call %d)"}`, call)
		case Drop:
			// http.ErrAbortHandler aborts the response without a reply —
			// net/http closes the connection and the client sees EOF.
			panic(http.ErrAbortHandler)
		case Truncate:
			rec := &recorder{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			for k, vs := range rec.header {
				if k == "Content-Length" {
					continue
				}
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			w.WriteHeader(status)
			body := rec.body.Bytes()
			_, _ = w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// recorder buffers a downstream response so Truncate can cut it.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(s int) {
	if r.status == 0 {
		r.status = s
	}
}
func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// delayOf returns the schedule's configured delay (the seeded plan's Delay;
// a fixed default for foreign Schedule implementations).
func delayOf(s Schedule) time.Duration {
	if sd, ok := s.(*seeded); ok {
		return sd.plan.Delay
	}
	return 10 * time.Millisecond
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
