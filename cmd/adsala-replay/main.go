// adsala-replay backtests trained artefacts against captured serving
// traffic: it streams a flight-recorder trace (written by
// `adsala-serve -trace <prefix>` or an in-process traced facade) through a
// candidate library offline — no daemon — and scores the candidate's
// decisions against the recorded ones.
//
// The report covers decision-agreement rate vs the recorded choices, a
// simulated decision-cache hit rate, per-op predicted-vs-measured residuals
// and model-predicted regret (for traces carrying measurement records), and
// latency tails — all computed in one constant-memory pass, so arbitrarily
// large traces replay in a fixed footprint. Warm-up traffic is excluded by
// default, matching the /stats contract.
//
// Usage:
//
//	adsala-replay -trace cap -lib gadi.adsala.json
//	adsala-replay -trace cap-00000.trace -lib retrained.json -baseline gadi.adsala.json -json
//	adsala-replay -trace cap -lib gadi.adsala.json -min-agreement 0.99
//	adsala-replay -trace cap -lib gadi.adsala.json -drift -drift-threshold 0.5
//
// -trace accepts a capture prefix (all `<prefix>-NNNNN.trace` rotations
// replay in order) or a single trace file. -baseline replays the same trace
// through a second artefact and reports both scores plus their deltas — the
// artefact-diff workflow for judging a retrained model on real traffic
// before promoting it. -min-agreement exits non-zero when the candidate's
// decision agreement falls below the threshold, making the tool
// self-asserting in CI.
//
// -drift additionally runs adsala-serve's online drift detector over the
// capture on the trace's own clock: the measurement records stream through
// the same windowed detector the daemon runs live (-drift-window,
// -drift-threshold, -drift-min-samples mirror the daemon's flags), and the
// report shows where it would have tripped — the offline threshold-tuning
// loop for the online monitor.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/replay"
	"repro/internal/trace"
)

// config is the parsed command line.
type config struct {
	tracePath     string
	libPath       string
	baselinePath  string
	jsonOut       bool
	cacheSize     int
	shards        int
	includeWarmup bool
	minAgreement  float64

	driftMode       bool
	driftWindow     time.Duration
	driftThreshold  float64
	driftMinSamples int64
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("adsala-replay", flag.ContinueOnError)
	fs.SetOutput(out)
	var cfg config
	fs.StringVar(&cfg.tracePath, "trace", "", "trace capture prefix or a single .trace file (required)")
	fs.StringVar(&cfg.libPath, "lib", "", "candidate library file written by adsala-train (required)")
	fs.StringVar(&cfg.baselinePath, "baseline", "", "second library to replay the same trace against and diff")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON")
	fs.IntVar(&cfg.cacheSize, "cache", 4096, "simulated decision cache capacity (match the recording daemon's -cache)")
	fs.IntVar(&cfg.shards, "shards", 16, "simulated decision cache shard count")
	fs.BoolVar(&cfg.includeWarmup, "include-warmup", false, "also score records flagged as warm-up traffic")
	fs.Float64Var(&cfg.minAgreement, "min-agreement", -1, "exit non-zero when decision agreement falls below this fraction (negative disables)")
	fs.BoolVar(&cfg.driftMode, "drift", false, "also run the online drift detector over the capture on the trace's own clock")
	fs.DurationVar(&cfg.driftWindow, "drift-window", time.Minute, "drift detector sliding window")
	fs.Float64Var(&cfg.driftThreshold, "drift-threshold", 1.0, "drift trip point on |windowed mean residual_log2|")
	fs.Int64Var(&cfg.driftMinSamples, "drift-min-samples", 32, "minimum windowed residual count before an op can be flagged drifting")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.tracePath == "" {
		return cfg, fmt.Errorf("-trace is required")
	}
	if cfg.libPath == "" {
		return cfg, fmt.Errorf("-lib is required")
	}
	if cfg.minAgreement > 1 {
		return cfg, fmt.Errorf("-min-agreement must be <= 1, got %v", cfg.minAgreement)
	}
	return cfg, nil
}

// output is the full JSON document: the candidate's report, plus the
// baseline's and the deltas when -baseline is set.
type output struct {
	Schema    string         `json:"schema"`
	Lib       string         `json:"lib"`
	Candidate *replay.Report `json:"candidate"`
	Baseline  *replay.Report `json:"baseline,omitempty"`
	Diff      *diff          `json:"diff,omitempty"`
	// Drift is the online drift detector's report over the capture — the
	// exact detector adsala-serve runs live, driven by the trace's own
	// timestamps (-drift).
	Drift *drift.Report `json:"drift,omitempty"`
}

// diff is candidate minus baseline on the headline scores.
type diff struct {
	Agreement    float64            `json:"agreement"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	RegretMean   map[string]float64 `json:"predicted_regret_mean_seconds,omitempty"`
	ResidualMean map[string]float64 `json:"residual_log2_mean,omitempty"`
}

func diffReports(cand, base *replay.Report) *diff {
	d := &diff{
		Agreement:    cand.Agreement - base.Agreement,
		CacheHitRate: cand.CacheHitRate - base.CacheHitRate,
	}
	for op, c := range cand.PerOp {
		b, ok := base.PerOp[op]
		if !ok {
			continue
		}
		if c.Measured > 0 && b.Measured > 0 {
			if d.RegretMean == nil {
				d.RegretMean = make(map[string]float64)
				d.ResidualMean = make(map[string]float64)
			}
			d.RegretMean[op] = c.PredictedRegretSeconds.Mean - b.PredictedRegretSeconds.Mean
			d.ResidualMean[op] = c.ResidualLog2.Mean - b.ResidualLog2.Mean
		}
	}
	return d
}

// runOne replays the trace through one library file.
func runOne(libPath string, files []string, cfg config) (*replay.Report, error) {
	lib, err := core.Load(libPath)
	if err != nil {
		return nil, err
	}
	return replay.Run(lib, files, replay.Config{
		IncludeWarmup: cfg.includeWarmup,
		CacheSize:     cfg.cacheSize,
		Shards:        cfg.shards,
	})
}

// printText renders one report as human-readable lines.
func printText(out io.Writer, label string, rep *replay.Report) {
	fmt.Fprintf(out, "%s:\n", label)
	fmt.Fprintf(out, "  trace: %d files, %d records", rep.Files, rep.Records)
	if rep.WarmupSkipped > 0 {
		fmt.Fprintf(out, " (%d warm-up skipped)", rep.WarmupSkipped)
	}
	if rep.DroppedBlocks > 0 || rep.DroppedBytes > 0 {
		fmt.Fprintf(out, " [recovered: %d blocks / %d bytes dropped]", rep.DroppedBlocks, rep.DroppedBytes)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  decisions: %d, agreement %.2f%%, simulated cache hit rate %.2f%%\n",
		rep.Decisions, rep.Agreement*100, rep.CacheHitRate*100)
	if rep.RecordedFallbacks > 0 || rep.ReplayFallbacks > 0 {
		fmt.Fprintf(out, "  fallbacks: %d recorded, %d replayed\n", rep.RecordedFallbacks, rep.ReplayFallbacks)
	}
	for op, or := range rep.PerOp {
		fmt.Fprintf(out, "  %s: %d decisions, agreement %.2f%%", op, or.Decisions, or.Agreement*100)
		if or.Measured > 0 {
			fmt.Fprintf(out, "; %d measured: regret mean %.3gs, residual log2 %.3f±%.3f, measured p99 %.3gs",
				or.Measured, or.PredictedRegretSeconds.Mean,
				or.ResidualLog2.Mean, or.ResidualLog2.Std, or.MeasuredLatency.P99)
		}
		fmt.Fprintln(out)
	}
	for _, c := range rep.Corrupt {
		fmt.Fprintf(out, "  corruption: %s\n", c)
	}
}

// printDrift renders the drift detector's report as human-readable lines.
func printDrift(out io.Writer, rep *drift.Report) {
	fmt.Fprintf(out, "drift (window %.0fs, threshold %.2f, min samples %d):\n",
		rep.WindowSeconds, rep.Threshold, rep.MinSamples)
	if rep.Degraded {
		fmt.Fprintf(out, "  DEGRADED at end of capture: %v\n", rep.DriftingOps)
	} else {
		fmt.Fprintf(out, "  healthy at end of capture (%d measurements scored)\n", rep.Observed)
	}
	for op, od := range rep.PerOp {
		fmt.Fprintf(out, "  %s: %d measured", op, od.Measured)
		if od.Unpredicted > 0 {
			fmt.Fprintf(out, " (%d unpredicted)", od.Unpredicted)
		}
		fmt.Fprintf(out, ", windowed residual log2 %.3f±%.3f over %d samples",
			od.ResidualLog2.Mean, od.ResidualLog2.Std, od.ResidualLog2.Count)
		if od.Drifting {
			fmt.Fprintf(out, " DRIFTING")
		}
		fmt.Fprintln(out)
		for _, b := range []string{"small", "medium", "large"} {
			bd, ok := od.Buckets[b]
			if !ok {
				continue
			}
			fmt.Fprintf(out, "    %s: %d samples, windowed residual log2 %.3f±%.3f",
				b, bd.Samples, bd.ResidualLog2.Mean, bd.ResidualLog2.Std)
			if bd.Drifting {
				fmt.Fprintf(out, " DRIFTING")
			}
			fmt.Fprintln(out)
		}
	}
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	if err != nil {
		return err
	}
	files, err := trace.Files(cfg.tracePath)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no trace files match %q (expected a file or a `%s-NNNNN.trace` prefix)",
			cfg.tracePath, cfg.tracePath)
	}

	doc := output{Schema: "adsala/replay/v1", Lib: cfg.libPath}
	doc.Candidate, err = runOne(cfg.libPath, files, cfg)
	if err != nil {
		return err
	}
	if cfg.baselinePath != "" {
		doc.Baseline, err = runOne(cfg.baselinePath, files, cfg)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		doc.Diff = diffReports(doc.Candidate, doc.Baseline)
	}
	if cfg.driftMode {
		lib, err := core.Load(cfg.libPath)
		if err != nil {
			return err
		}
		doc.Drift, err = replay.DriftRun(lib, files, drift.Config{
			Window:     cfg.driftWindow,
			Threshold:  cfg.driftThreshold,
			MinSamples: cfg.driftMinSamples,
		}, cfg.includeWarmup)
		if err != nil {
			return fmt.Errorf("drift: %w", err)
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		printText(out, cfg.libPath, doc.Candidate)
		if doc.Baseline != nil {
			printText(out, cfg.baselinePath+" (baseline)", doc.Baseline)
			fmt.Fprintf(out, "diff (candidate - baseline): agreement %+.2f%%, cache hit rate %+.2f%%\n",
				doc.Diff.Agreement*100, doc.Diff.CacheHitRate*100)
		}
		if doc.Drift != nil {
			printDrift(out, doc.Drift)
		}
	}

	if cfg.minAgreement >= 0 && doc.Candidate.Agreement < cfg.minAgreement {
		return fmt.Errorf("decision agreement %.4f below -min-agreement %.4f",
			doc.Candidate.Agreement, cfg.minAgreement)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-replay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
