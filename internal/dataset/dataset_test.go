package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func sample(n int, seed int64) *Dataset {
	d := New([]string{"a", "b"})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		d.Append([]float64{rng.Float64(), rng.NormFloat64()}, rng.ExpFloat64())
	}
	return d
}

func TestAppendAndLen(t *testing.T) {
	d := New([]string{"x"})
	if d.Len() != 0 {
		t.Fatal("new dataset not empty")
	}
	d.Append([]float64{1}, 2)
	if d.Len() != 1 || d.Y[0] != 2 || d.X[0][0] != 1 {
		t.Fatalf("append failed: %+v", d)
	}
}

func TestAppendWidthPanics(t *testing.T) {
	d := New([]string{"x", "y"})
	defer func() {
		if recover() == nil {
			t.Error("mismatched row width should panic")
		}
	}()
	d.Append([]float64{1}, 0)
}

func TestColumn(t *testing.T) {
	d := New([]string{"a", "b"})
	d.Append([]float64{1, 2}, 0)
	d.Append([]float64{3, 4}, 0)
	b, err := d.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 || b[1] != 4 {
		t.Errorf("Column(b) = %v", b)
	}
	if _, err := d.Column("zzz"); err == nil {
		t.Error("missing column should error")
	}
}

func TestSelect(t *testing.T) {
	d := New([]string{"a", "b", "c"})
	d.Append([]float64{1, 2, 3}, 9)
	s, err := d.Select([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if s.X[0][0] != 3 || s.X[0][1] != 1 || s.Y[0] != 9 {
		t.Errorf("Select gave %+v", s)
	}
	if _, err := d.Select([]string{"nope"}); err == nil {
		t.Error("missing column should error")
	}
	// Mutating the selection must not affect the original.
	s.X[0][0] = 100
	if d.X[0][2] == 100 {
		t.Error("Select shares storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sample(5, 1)
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[0] = 999
	if d.X[0][0] == 999 || d.Y[0] == 999 {
		t.Error("Clone shares storage")
	}
}

func TestSplitSizes(t *testing.T) {
	d := sample(100, 2)
	train, test := d.Split(0.3, 7)
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes = %d/%d, want 70/30", train.Len(), test.Len())
	}
	// Same seed is reproducible.
	tr2, te2 := d.Split(0.3, 7)
	if tr2.Len() != 70 || te2.Y[0] != test.Y[0] {
		t.Error("split not reproducible with same seed")
	}
}

func TestStratifiedSplitDistribution(t *testing.T) {
	d := sample(400, 3)
	train, test := d.StratifiedSplit(0.25, 1)
	if got := train.Len() + test.Len(); got != 400 {
		t.Fatalf("rows lost: %d", got)
	}
	frac := float64(test.Len()) / 400
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("test fraction = %v, want ~0.25", frac)
	}
	// Stratification: the medians of train and test targets should be close
	// relative to the overall spread.
	med := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	all := append([]float64(nil), d.Y...)
	sort.Float64s(all)
	spread := all[len(all)-1] - all[0]
	if diff := math.Abs(med(train.Y) - med(test.Y)); diff > spread*0.2 {
		t.Errorf("train/test medians differ by %v (spread %v) — stratification failed", diff, spread)
	}
}

func TestStratifiedSplitEdgeCases(t *testing.T) {
	d := sample(10, 4)
	train, test := d.StratifiedSplit(0, 1)
	if train.Len() != 10 || test.Len() != 0 {
		t.Errorf("frac=0 gave %d/%d", train.Len(), test.Len())
	}
	train, test = d.StratifiedSplit(1, 1)
	if train.Len() != 0 || test.Len() != 10 {
		t.Errorf("frac=1 gave %d/%d", train.Len(), test.Len())
	}
	empty := New([]string{"a"})
	train, test = empty.StratifiedSplit(0.3, 1)
	if train.Len() != 0 || test.Len() != 0 {
		t.Error("empty dataset split should be empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(25, 5)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || len(got.Cols) != len(d.Cols) {
		t.Fatalf("round trip changed shape: %d/%d", got.Len(), len(got.Cols))
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] = %v, want %v", i, got.Y[i], d.Y[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("header without y should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,y\nnot-a-number,2\n")); err == nil {
		t.Error("bad float should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,y\n1,nan-ish\n")); err == nil {
		t.Error("bad target should error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := New([]string{"v"})
	for i := 0; i < 50; i++ {
		d.Append([]float64{float64(i)}, float64(i)*10)
	}
	d.Shuffle(rand.New(rand.NewSource(9)))
	for i := range d.X {
		if d.Y[i] != d.X[i][0]*10 {
			t.Fatalf("row %d decoupled from target", i)
		}
	}
}

// Property: stratified split conserves every (x, y) pair exactly once.
func TestStratifiedSplitConservationProperty(t *testing.T) {
	f := func(nRaw uint8, fracRaw uint8, seed int64) bool {
		n := int(nRaw%120) + 1
		frac := float64(fracRaw%90+5) / 100
		d := sample(n, seed)
		train, test := d.StratifiedSplit(frac, seed)
		if train.Len()+test.Len() != n {
			return false
		}
		count := map[float64]int{}
		for _, y := range d.Y {
			count[y]++
		}
		for _, y := range train.Y {
			count[y]--
		}
		for _, y := range test.Y {
			count[y]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
