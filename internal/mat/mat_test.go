package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewF32Zeroed(t *testing.T) {
	m := NewF32(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 5 {
		t.Fatalf("unexpected header: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewF32(4, 4)
	m.Set(2, 3, 1.5)
	if m.At(2, 3) != 1.5 {
		t.Errorf("At(2,3) = %v, want 1.5", m.At(2, 3))
	}
	d := NewF64(4, 4)
	d.Set(0, 0, -2.25)
	if d.At(0, 0) != -2.25 {
		t.Errorf("At(0,0) = %v, want -2.25", d.At(0, 0))
	}
}

func TestAlignment(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 100, 1023} {
		f := NewF32(n, n)
		if !f.Aligned() {
			t.Errorf("F32 %d×%d not 64-byte aligned", n, n)
		}
		d := NewF64(n, 1)
		if !d.Aligned() {
			t.Errorf("F64 %d×1 not 64-byte aligned", n)
		}
	}
	if !NewF32(0, 0).Aligned() {
		t.Error("empty matrix should report aligned")
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewF32(-1, 2) should panic")
		}
	}()
	NewF32(-1, 2)
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewF64(5, 7)
	m.FillRandom(rng)
	c := m.Clone()
	if c.MaxAbsDiff(m) != 0 {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, 999)
	if m.At(0, 0) == 999 {
		t.Error("mutating clone affected original")
	}
}

func TestCloneCompactsStride(t *testing.T) {
	m := &F32{Rows: 2, Cols: 3, Stride: 8, Data: make([]float32, 16)}
	m.Set(1, 2, 7)
	c := m.Clone()
	if c.Stride != 3 {
		t.Errorf("clone stride = %d, want 3", c.Stride)
	}
	if c.At(1, 2) != 7 {
		t.Errorf("clone lost data through stride compaction")
	}
}

func TestFill(t *testing.T) {
	m := NewF32(3, 3)
	m.Fill(2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 2.5 {
				t.Fatalf("Fill missed (%d,%d)", i, j)
			}
		}
	}
}

func TestFillRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewF32(20, 20)
	m.FillRandom(rng)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if v < -1 || v >= 1 {
				t.Fatalf("FillRandom value %v out of [-1,1)", v)
			}
		}
	}
}

func TestMaxAbsDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff on mismatched shapes should panic")
		}
	}()
	NewF64(2, 2).MaxAbsDiff(NewF64(2, 3))
}

func TestGemmAccounting(t *testing.T) {
	if got := GemmBytesF32(10, 20, 30); got != 4*(200+600+300) {
		t.Errorf("GemmBytesF32 = %d", got)
	}
	if got := GemmBytesF64(10, 20, 30); got != 8*(200+600+300) {
		t.Errorf("GemmBytesF64 = %d", got)
	}
	if got := GemmFlops(2, 3, 4); got != 48 {
		t.Errorf("GemmFlops = %d, want 48", got)
	}
	// The paper's 100 MB bound example: footprint must not overflow ints for
	// paper-scale dims (up to ~74k).
	if got := GemmBytesF32(74000, 74000, 74000); got <= 0 {
		t.Errorf("overflow in GemmBytesF32 at paper-scale dims: %d", got)
	}
}

// Property: GemmBytes is symmetric in swapping (m,n) (A and C transpose roles).
func TestGemmBytesSymmetryProperty(t *testing.T) {
	f := func(m, k, n uint16) bool {
		a, b, c := int(m), int(k), int(n)
		return GemmBytesF32(a, b, c) == GemmBytesF32(c, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At/Set round-trips for arbitrary in-range coordinates.
func TestAtSetProperty(t *testing.T) {
	m := NewF64(17, 13)
	f := func(i, j uint8, v float64) bool {
		r, c := int(i)%17, int(j)%13
		m.Set(r, c, v)
		return m.At(r, c) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
