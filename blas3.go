package adsala

import (
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/serve"
)

// Internal aliases backing the exported matrix names.
type (
	matF32 = mat.F32
	matF64 = mat.F64
)

// NewMatrixF32 allocates a zeroed, 64-byte-aligned rows × cols matrix.
func NewMatrixF32(rows, cols int) *MatrixF32 { return mat.NewF32(rows, cols) }

// NewMatrixF64 allocates a zeroed, 64-byte-aligned rows × cols matrix.
func NewMatrixF64(rows, cols int) *MatrixF64 { return mat.NewF64(rows, cols) }

// BLAS is the generic runtime front end of Fig 3 for every registered
// BLAS-3 operation: each call consults the library's per-op model bundle
// for the thread count (decisions cached under the (op, shape) key in the
// library's ONE shared engine) and executes on the packed blocked kernels.
// Thread counts are clamped to the local GOMAXPROCS so a library trained
// for a larger platform still runs correctly here.
//
// Every facade obtained from the same Library — BLAS() calls, the
// deprecated NewGemm/NewSyrk wrappers, Engine with default options —
// shares that one engine, so CacheStats and a serving daemon's /stats
// always agree and a decision warmed through any front end serves all of
// them.
//
// The full predict→execute path is allocation-free in steady state: cache
// hits rank nothing, and execution draws a warmed blas.Context (packed
// panel buffers plus a persistent worker team) from the kernel's internal
// pool. A BLAS is safe for concurrent use.
type BLAS struct {
	eng *serve.Engine
	// maxLocal caps the executed thread count (0 = GOMAXPROCS).
	maxLocal int
}

// BLAS returns the generic BLAS-3 front end bound to the library's shared
// serving engine.
func (l *Library) BLAS() *BLAS { return &BLAS{eng: l.sharedEngine()} }

// Engine returns the serving engine behind this facade (the library's
// shared engine).
func (b *BLAS) Engine() *serve.Engine { return b.eng }

// SetMaxLocalThreads overrides the local execution clamp for calls through
// this facade (useful in tests). It does not affect other facades sharing
// the engine.
func (b *BLAS) SetMaxLocalThreads(n int) { b.maxLocal = n }

// localClamp returns the largest thread count to actually run.
func (b *BLAS) localClamp() int {
	if b.maxLocal > 0 {
		return b.maxLocal
	}
	return runtime.GOMAXPROCS(0)
}

// clampThreads bounds a model decision to [1, max] for local execution.
func clampThreads(threads, max int) int {
	if threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// choose returns the model-selected thread count for one op at its
// canonical feature triple, clamped for local execution.
func (b *BLAS) choose(op Op, m, k, n int) int {
	return clampThreads(b.eng.PredictOp(op, m, k, n), b.localClamp())
}

// opDims32 returns the (m, n, k) dimensions of op(A)·op(B).
func opDims32(a *MatrixF32, transA bool, bm *MatrixF32, transB bool) (m, n, k int) {
	m, k = a.Rows, a.Cols
	if transA {
		m, k = a.Cols, a.Rows
	}
	n = bm.Cols
	if transB {
		n = bm.Rows
	}
	return m, n, k
}

// opDims64 is opDims32 for double precision.
func opDims64(a *MatrixF64, transA bool, bm *MatrixF64, transB bool) (m, n, k int) {
	m, k = a.Rows, a.Cols
	if transA {
		m, k = a.Cols, a.Rows
	}
	n = bm.Cols
	if transB {
		n = bm.Rows
	}
	return m, n, k
}

// syrkDims returns the (n, k) dimensions of op(A) for the symmetric
// updates.
func syrkDims(rows, cols int, trans bool) (n, k int) {
	if trans {
		return cols, rows
	}
	return rows, cols
}

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision with
// the model-selected thread count.
//
// Each facade call times its kernel execution and, when the engine carries
// a flight recorder, appends a measurement record alongside the decision
// record — the in-process path is where predicted and measured runtimes
// pair up, turning every traced call into labelled evaluation data for
// adsala-replay. The timing is two monotonic clock reads; no closures, no
// allocation.
func (b *BLAS) SGEMM(transA, transB bool, alpha float32, a, bm *MatrixF32, beta float32, c *MatrixF32) error {
	m, n, k := opDims32(a, transA, bm, transB)
	threads := b.choose(OpGEMM, m, k, n)
	start := time.Now()
	err := blas.SGEMM(transA, transB, alpha, a, bm, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpGEMM, m, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// DGEMM is the double-precision counterpart of SGEMM.
func (b *BLAS) DGEMM(transA, transB bool, alpha float64, a, bm *MatrixF64, beta float64, c *MatrixF64) error {
	m, n, k := opDims64(a, transA, bm, transB)
	threads := b.choose(OpGEMM, m, k, n)
	start := time.Now()
	err := blas.DGEMM(transA, transB, alpha, a, bm, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpGEMM, m, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// SSYRK computes C ← alpha·op(A)·op(A)ᵀ + beta·C in single precision with
// the thread count selected by the SYRK model (the GEMM model when no SYRK
// model was trained). Only the lower triangle of C is read for the beta
// update; the result is exactly symmetric.
func (b *BLAS) SSYRK(trans bool, alpha float32, a *MatrixF32, beta float32, c *MatrixF32) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	threads := b.choose(OpSYRK, n, k, n)
	start := time.Now()
	err := blas.SSYRK(trans, alpha, a, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpSYRK, n, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// DSYRK is the double-precision counterpart of SSYRK.
func (b *BLAS) DSYRK(trans bool, alpha float64, a *MatrixF64, beta float64, c *MatrixF64) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	threads := b.choose(OpSYRK, n, k, n)
	start := time.Now()
	err := blas.DSYRK(trans, alpha, a, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpSYRK, n, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// SSYR2K computes C ← alpha·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ) + beta·C in
// single precision with the thread count selected by the SYR2K model (GEMM
// fallback when untrained). op(A) and op(B) must both be n×k; only the
// lower triangle of C is read for the beta update and the result is exactly
// symmetric.
func (b *BLAS) SSYR2K(trans bool, alpha float32, a, bm *MatrixF32, beta float32, c *MatrixF32) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	threads := b.choose(OpSYR2K, n, k, n)
	start := time.Now()
	err := blas.SSYR2K(trans, alpha, a, bm, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpSYR2K, n, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// DSYR2K is the double-precision counterpart of SSYR2K.
func (b *BLAS) DSYR2K(trans bool, alpha float64, a, bm *MatrixF64, beta float64, c *MatrixF64) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	threads := b.choose(OpSYR2K, n, k, n)
	start := time.Now()
	err := blas.DSYR2K(trans, alpha, a, bm, beta, c, threads)
	if err == nil {
		b.eng.RecordMeasured(OpSYR2K, n, k, n, threads, time.Since(start).Nanoseconds())
	}
	return err
}

// LastChoice reports the thread count a previous call (or prediction)
// selected for the op at its canonical (m, k, n) triple — symmetric updates
// pass (n, k, n) — clamped the same way execution was. It is a read-only
// peek of the shared decision cache: no prediction runs and no hit/miss
// counter moves. Returns 0 when the configuration has not been selected yet
// (or its entry has been evicted).
func (b *BLAS) LastChoice(op Op, m, k, n int) int {
	threads, ok := b.eng.CachedChoice(op, m, k, n)
	if !ok {
		return 0
	}
	return clampThreads(threads, b.localClamp())
}

// CacheStats reports (hits, misses) of the shared decision cache —
// aggregated across every op and every facade of the library.
func (b *BLAS) CacheStats() (hits, misses int64) { return b.eng.Cache().Stats() }

// Stats returns the shared engine's full serving counters.
func (b *BLAS) Stats() serve.Stats { return b.eng.Stats() }
