// Package ops is the BLAS-3 operation registry: one table describing every
// operation the library can train models for, serve decisions for, and
// execute. Each Spec carries the op's wire name, the mapping from sampled
// dimensions onto the (m, k, n) feature triple the models consume, its FLOP
// count (the cost weight that separates per-op cost profiles), and an
// executor binding into internal/blas used for install-time timing.
//
// The registry exists so that extending the library to a new BLAS-3
// operation (the paper's §VII future work) is one table entry plus a kernel
// — serve, core, sampling-driven warm-up, the command-line tools and the
// public facade all consume the table instead of switching on the op.
package ops

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/sampling"
)

// Op identifies a BLAS-3 operation. It keys the serving decision cache and
// the per-op model bundle, so decisions and models for the same shape triple
// never alias across operations.
type Op uint8

const (
	// GEMM is the general matrix multiply C ← αAB + βC (feature triple
	// m×k×n).
	GEMM Op = iota
	// SYRK is the symmetric rank-k update C ← αAAᵀ + βC; its feature triple
	// is (n, k, n).
	SYRK
	// SYR2K is the symmetric rank-2k update C ← α(ABᵀ + BAᵀ) + βC; its
	// feature triple is (n, k, n).
	SYR2K

	// numOps must stay last in the iota sequence; the registry table and
	// every per-op array are sized with it.
	numOps
)

// NumOps returns the number of registered operations. Per-op arrays (batch
// splits, model bundles) are sized with it instead of hard-coding the op
// count.
func NumOps() int { return int(numOps) }

// Spec describes one registered operation.
type Spec struct {
	// Op is the operation this spec describes (its index in the table).
	Op Op
	// Name is the wire name used by the HTTP API, artefact files and
	// command-line flags ("gemm", "syrk", "syr2k").
	Name string
	// Canon maps a shape sampled from the GEMM-domain sampler onto this
	// op's canonical (m, k, n) feature triple. GEMM is the identity; the
	// symmetric updates fold the output to m×m, giving (m, k, m).
	Canon func(s sampling.Shape) sampling.Shape
	// Flops returns the FLOP count of one call at the canonical triple —
	// the per-op cost weight (GEMM 2mkn, SYRK n(n+1)k, SYR2K 2n(n+1)k).
	Flops func(m, k, n int) float64
	// NewBench allocates random operands for the canonical triple and
	// returns a closure executing one call of the op on the internal/blas
	// kernels with the given thread count — the executor binding used by
	// install-time local timing (and the bench harnesses).
	NewBench func(m, k, n int, rng *rand.Rand) func(threads int) error
}

// table is the registry. Adding an operation means appending an Op constant,
// one entry here, and the kernel it binds to — every consumer picks it up
// from the table.
var table = [numOps]Spec{
	GEMM: {
		Op:    GEMM,
		Name:  "gemm",
		Canon: func(s sampling.Shape) sampling.Shape { return s },
		Flops: func(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) },
		NewBench: func(m, k, n int, rng *rand.Rand) func(threads int) error {
			a := mat.NewF32(m, k)
			b := mat.NewF32(k, n)
			c := mat.NewF32(m, n)
			a.FillRandom(rng)
			b.FillRandom(rng)
			return func(threads int) error {
				return blas.SGEMM(false, false, 1, a, b, 0, c, threads)
			}
		},
	},
	SYRK: {
		Op:    SYRK,
		Name:  "syrk",
		Canon: func(s sampling.Shape) sampling.Shape { return sampling.Shape{M: s.M, K: s.K, N: s.M} },
		Flops: func(m, k, n int) float64 { return float64(m) * float64(m+1) * float64(k) },
		NewBench: func(m, k, n int, rng *rand.Rand) func(threads int) error {
			a := mat.NewF32(m, k)
			c := mat.NewF32(m, m)
			a.FillRandom(rng)
			return func(threads int) error {
				return blas.SSYRK(false, 1, a, 0, c, threads)
			}
		},
	},
	SYR2K: {
		Op:    SYR2K,
		Name:  "syr2k",
		Canon: func(s sampling.Shape) sampling.Shape { return sampling.Shape{M: s.M, K: s.K, N: s.M} },
		Flops: func(m, k, n int) float64 { return 2 * float64(m) * float64(m+1) * float64(k) },
		NewBench: func(m, k, n int, rng *rand.Rand) func(threads int) error {
			a := mat.NewF32(m, k)
			b := mat.NewF32(m, k)
			c := mat.NewF32(m, m)
			a.FillRandom(rng)
			b.FillRandom(rng)
			return func(threads int) error {
				return blas.SSYR2K(false, 1, a, b, 0, c, threads)
			}
		},
	},
}

// Specs returns the registry entries in op order.
func Specs() []Spec { return append([]Spec(nil), table[:]...) }

// All returns every registered op in order.
func All() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// Spec returns the registry entry for the op. Unknown ops yield a zero Spec
// with only the fallback name set; callers guard with Valid.
func (op Op) Spec() Spec {
	if !op.Valid() {
		return Spec{Op: op, Name: fmt.Sprintf("op(%d)", uint8(op))}
	}
	return table[op]
}

// String returns the wire name of the op.
func (op Op) String() string { return op.Spec().Name }

// Valid reports whether op is a registered operation.
func (op Op) Valid() bool { return op < numOps }

// Names returns the registered wire names in op order.
func Names() []string {
	out := make([]string, numOps)
	for i, s := range table {
		out[i] = s.Name
	}
	return out
}

// Parse maps a wire name to an Op. The empty string selects GEMM so pre-op
// clients (and hand-written queries) keep working unchanged.
func Parse(s string) (Op, error) {
	if s == "" {
		return GEMM, nil
	}
	for _, spec := range table {
		if s == spec.Name {
			return spec.Op, nil
		}
	}
	return 0, fmt.Errorf("ops: unknown op %q (want one of: %s)", s, strings.Join(Names(), ", "))
}

// ParseList maps a comma-separated list of wire names to ops, deduplicated
// in first-seen order (the -ops command-line flag format).
func ParseList(s string) ([]Op, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Op
	seen := make(map[Op]bool)
	for _, part := range strings.Split(s, ",") {
		op, err := Parse(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	return out, nil
}
