package obs

import (
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): one HELP/TYPE pair
// per family, then one line per series sample. Histograms render their
// non-empty buckets as cumulative `_bucket{le="..."}` samples — the
// format permits sparse bounds as long as counts are cumulative and a
// `+Inf` bucket equal to `_count` closes the series — plus `_sum` and
// `_count`.

// writeFamily renders one family. Series print in registration order,
// which is deterministic for a fixed registration sequence.
func writeFamily(b *strings.Builder, f *family) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.promType())
	b.WriteByte('\n')
	for _, key := range f.order {
		writeSeries(b, f.name, f.series[key])
	}
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, name string, s *series) {
	switch s.kind {
	case kindCounter:
		writeSample(b, name, "", s.labelText, formatInt(s.counter.Value()))
	case kindGauge:
		writeSample(b, name, "", s.labelText, formatFloat(s.gauge.Value()))
	case kindCounterFunc, kindGaugeFunc:
		writeSample(b, name, "", s.labelText, formatFloat(s.fn()))
	case kindHistogram:
		writeHistogram(b, name, s)
	}
}

// writeHistogram renders the cumulative buckets, sum and count of one
// histogram series. The bucket counts and the closing +Inf/_count sample
// come from one walk over the live atomics; observations racing the
// scrape may make +Inf momentarily exceed the earlier cumulative bounds,
// never undercut them, so monotonicity holds.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	bounds, counts := h.snapshotBuckets()
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		writeSample(b, name, "_bucket", mergeLabels(s.labelText, "le", formatFloat(float64(bound)*h.scale)), formatInt(cum))
	}
	writeSample(b, name, "_bucket", mergeLabels(s.labelText, "le", "+Inf"), formatInt(cum))
	writeSample(b, name, "_sum", s.labelText, formatFloat(float64(h.Sum())*h.scale))
	writeSample(b, name, "_count", s.labelText, formatInt(cum))
}

// writeSample renders one `name suffix labels value` line.
func writeSample(b *strings.Builder, name, suffix, labelText, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteString(labelText)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// mergeLabels splices an extra label (the histogram `le`) into a rendered
// label suffix, keeping it last — Prometheus does not require sorted
// label order within a line.
func mergeLabels(labelText, name, value string) string {
	var b strings.Builder
	b.WriteByte('{')
	if labelText != "" {
		// strip the braces and keep the existing pairs first
		b.WriteString(labelText[1 : len(labelText)-1])
		b.WriteByte(',')
	}
	b.WriteString(name)
	b.WriteString(`="`)
	escapeLabelValue(&b, value)
	b.WriteByte('"')
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
