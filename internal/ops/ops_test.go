package ops

import (
	"math/rand"
	"testing"

	"repro/internal/sampling"
)

func TestParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Op
	}{{"", GEMM}, {"gemm", GEMM}, {"syrk", SYRK}, {"syr2k", SYR2K}} {
		got, err := Parse(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Parse(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := Parse("trsm"); err == nil {
		t.Error("unknown op should parse with error")
	}
	if GEMM.String() != "gemm" || SYRK.String() != "syrk" || SYR2K.String() != "syr2k" {
		t.Errorf("wire names: %q %q %q", GEMM, SYRK, SYR2K)
	}
	if !GEMM.Valid() || !SYR2K.Valid() || Op(numOps).Valid() {
		t.Error("Valid() wrong")
	}
	if len(Names()) != NumOps() || len(Specs()) != NumOps() || len(All()) != NumOps() {
		t.Error("registry enumeration sizes disagree")
	}
}

func TestParseList(t *testing.T) {
	got, err := ParseList("gemm, syrk,gemm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != GEMM || got[1] != SYRK {
		t.Errorf("ParseList = %v, want [gemm syrk] deduplicated", got)
	}
	if _, err := ParseList("gemm,nope"); err == nil {
		t.Error("bad list should error")
	}
	if got, err := ParseList("  "); err != nil || got != nil {
		t.Errorf("empty list = (%v, %v)", got, err)
	}
}

func TestSpecTable(t *testing.T) {
	// Every entry is self-consistent: Op matches its index, and every
	// function member is populated.
	for i, spec := range Specs() {
		if spec.Op != Op(i) {
			t.Errorf("spec %d has Op %v", i, spec.Op)
		}
		if spec.Name == "" || spec.Canon == nil || spec.Flops == nil || spec.NewBench == nil {
			t.Errorf("spec %q incomplete: %+v", spec.Name, spec)
		}
	}
	// Canonical triples: GEMM identity, symmetric updates fold to (m, k, m).
	sh := sampling.Shape{M: 100, K: 30, N: 7}
	if got := GEMM.Spec().Canon(sh); got != sh {
		t.Errorf("gemm canon %v", got)
	}
	want := sampling.Shape{M: 100, K: 30, N: 100}
	if got := SYRK.Spec().Canon(sh); got != want {
		t.Errorf("syrk canon %v, want %v", got, want)
	}
	if got := SYR2K.Spec().Canon(sh); got != want {
		t.Errorf("syr2k canon %v, want %v", got, want)
	}
	// FLOP weights: syrk ≈ half a square GEMM, syr2k twice syrk.
	g := GEMM.Spec().Flops(64, 32, 64)
	s := SYRK.Spec().Flops(64, 32, 64)
	s2 := SYR2K.Spec().Flops(64, 32, 64)
	if s >= g || s2 != 2*s {
		t.Errorf("flop weights gemm=%v syrk=%v syr2k=%v", g, s, s2)
	}
}

func TestBenchExecutors(t *testing.T) {
	// Every registered op's executor binding runs the real kernel without
	// error at a small canonical triple.
	rng := rand.New(rand.NewSource(1))
	for _, spec := range Specs() {
		sh := spec.Canon(sampling.Shape{M: 18, K: 11, N: 13})
		run := spec.NewBench(sh.M, sh.K, sh.N, rng)
		for _, threads := range []int{1, 2} {
			if err := run(threads); err != nil {
				t.Errorf("%s bench at %v threads=%d: %v", spec.Name, sh, threads, err)
			}
		}
	}
}
