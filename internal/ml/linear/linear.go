// Package linear implements the paper's linear candidate models: ordinary
// least squares, ElasticNet (coordinate descent) and Bayesian ridge
// regression (evidence maximisation). They are fast to evaluate but, as
// Tables III/IV show, too inaccurate for the nonlinear runtime surface.
package linear

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

func init() {
	ml.RegisterKind("linear", func() ml.Regressor { return &Regression{} })
	ml.RegisterKind("elasticnet", func() ml.Regressor { return NewElasticNet(1.0, 0.5) })
	ml.RegisterKind("bayesridge", func() ml.Regressor { return NewBayesianRidge() })
}

// Regression is ordinary least squares fitted via the normal equations with
// a tiny Tikhonov jitter for numerical safety.
type Regression struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// Name implements ml.Regressor.
func (r *Regression) Name() string { return "Linear Regression" }

// Fit solves min ‖Xw + b − y‖².
func (r *Regression) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	w, b, err := solveLeastSquares(X, y, 1e-10)
	if err != nil {
		return fmt.Errorf("linear: %w", err)
	}
	r.Weights, r.Intercept = w, b
	return nil
}

// Predict implements ml.Regressor.
func (r *Regression) Predict(x []float64) float64 {
	return dot(r.Weights, x) + r.Intercept
}

// solveLeastSquares centres the data, forms the (d×d) Gram system with ridge
// jitter, and solves by Gaussian elimination with partial pivoting.
func solveLeastSquares(X [][]float64, y []float64, ridge float64) ([]float64, float64, error) {
	n, d := len(X), len(X[0])
	xm := make([]float64, d)
	var ym float64
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xm[j] += X[i][j]
		}
		ym += y[i]
	}
	for j := range xm {
		xm[j] /= float64(n)
	}
	ym /= float64(n)

	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	rhs := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xj := X[i][j] - xm[j]
			rhs[j] += xj * (y[i] - ym)
			for l := j; l < d; l++ {
				a[j][l] += xj * (X[i][l] - xm[l])
			}
		}
	}
	for j := 0; j < d; j++ {
		for l := 0; l < j; l++ {
			a[j][l] = a[l][j]
		}
		a[j][j] += ridge
	}
	w, err := solveDense(a, rhs)
	if err != nil {
		return nil, 0, err
	}
	return w, ym - dot(w, xm), nil
}

// solveDense solves a·x = b in place by Gaussian elimination with partial
// pivoting. a and b are consumed.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	for col := 0; col < d; col++ {
		// Pivot.
		piv, best := col, math.Abs(a[col][col])
		for r := col + 1; r < d; r++ {
			if v := math.Abs(a[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		inv := 1 / a[col][col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for cc := col; cc < d; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < d; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

var _ ml.Regressor = (*Regression)(nil)
