package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// Version returns the build's version string: the main module version
// stamped by the Go toolchain when built from a tagged module, "(devel)"
// otherwise. Exposed as the adsala_build_info version label so a scrape
// can tell which build answered it.
func Version() string {
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" {
		return info.Main.Version
	}
	return "(devel)"
}

// RegisterProcessMetrics attaches the process-identity instruments every
// daemon exposes: adsala_build_info (constant 1, with version and
// go_version labels — the Prometheus build-info convention, joinable onto
// any other series) and adsala_uptime_seconds (seconds since registration,
// i.e. since daemon construction). Idempotent per registry, like all
// registration.
func RegisterProcessMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("adsala_build_info",
		"Constant 1, labelled with the build's module version and Go toolchain version.",
		func() float64 { return 1 },
		L("version", Version()), L("go_version", runtime.Version()))
	r.GaugeFunc("adsala_uptime_seconds",
		"Seconds since this daemon's metrics registry came up.",
		func() float64 { return time.Since(start).Seconds() })
}

// MountPprof mounts net/http/pprof under /debug/pprof/ on the mux — the
// shared wiring behind every daemon's opt-in -pprof flag. Off by default
// everywhere: profiling endpoints expose internals and cost CPU, so
// daemons gate this behind the flag rather than mounting unconditionally.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
