package adsala

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func trainQuick(t *testing.T) (*Library, *Report) {
	t.Helper()
	lib, rep, err := Train(TrainOptions{Platform: "Gadi", Shapes: 60, Quick: true, CapMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	return lib, rep
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(TrainOptions{Platform: "Frontier"}); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestTrainAndFacade(t *testing.T) {
	lib, rep := trainQuick(t)
	if lib.Platform() != "Gadi" {
		t.Errorf("Platform = %q", lib.Platform())
	}
	if lib.ModelKind() == "" {
		t.Error("no model kind")
	}
	if len(lib.Candidates()) == 0 || lib.Candidates()[0] != 1 {
		t.Errorf("candidates = %v", lib.Candidates())
	}
	if got := lib.OptimalThreads(512, 512, 512); got < 1 || got > 96 {
		t.Errorf("OptimalThreads = %d", got)
	}
	if rt := lib.PredictRuntime(512, 512, 512, 8); rt <= 0 {
		t.Errorf("PredictRuntime = %v", rt)
	}
	if lib.EvalLatency() <= 0 {
		t.Errorf("EvalLatency = %v", lib.EvalLatency())
	}
	if !strings.Contains(rep.String(), "XGBoost") {
		t.Errorf("report missing models:\n%s", rep)
	}
	if _, ok := rep.Best(lib.ModelKind()); !ok {
		t.Error("selected model missing from report")
	}
}

func TestSaveLoadFacade(t *testing.T) {
	lib, _ := trainQuick(t)
	path := filepath.Join(t.TempDir(), "adsala.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.OptimalThreads(300, 300, 300) != lib.OptimalThreads(300, 300, 300) {
		t.Error("choice changed after reload")
	}
}

func TestGemmProducesCorrectResult(t *testing.T) {
	lib, _ := trainQuick(t)
	g := lib.NewGemm()
	rng := rand.New(rand.NewSource(1))
	m, k, n := 33, 47, 29
	a := NewMatrixF32(m, k)
	b := NewMatrixF32(k, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c := NewMatrixF32(m, n)
	if err := g.SGEMM(false, false, 1, a, b, 0, c); err != nil {
		t.Fatal(err)
	}
	// Verify one element against a manual inner product.
	var want float64
	for p := 0; p < k; p++ {
		want += float64(a.At(3, p)) * float64(b.At(p, 5))
	}
	got := float64(c.At(3, 5))
	if d := got - want; d > 1e-3 || d < -1e-3 {
		t.Errorf("C[3,5] = %v, want %v", got, want)
	}
	// DGEMM path too.
	ad := NewMatrixF64(4, 5)
	bd := NewMatrixF64(5, 6)
	ad.FillRandom(rng)
	bd.FillRandom(rng)
	cd := NewMatrixF64(4, 6)
	if err := g.DGEMM(false, false, 1, ad, bd, 0, cd); err != nil {
		t.Fatal(err)
	}
}

func TestGemmCacheAndClamp(t *testing.T) {
	lib, _ := trainQuick(t)
	g := lib.NewGemm()
	g.SetMaxLocalThreads(2)
	if got := g.LastChoice(4096, 4096, 4096); got > 2 {
		t.Errorf("clamp failed: %d", got)
	}
	rng := rand.New(rand.NewSource(2))
	a := NewMatrixF32(16, 16)
	b := NewMatrixF32(16, 16)
	c := NewMatrixF32(16, 16)
	a.FillRandom(rng)
	b.FillRandom(rng)
	for i := 0; i < 5; i++ {
		if err := g.SGEMM(false, false, 1, a, b, 0, c); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := g.CacheStats()
	if hits < 4 {
		t.Errorf("cache hits = %d after 5 repeated shapes (misses %d)", hits, misses)
	}
}

func TestTrainLocalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("local timing in -short mode")
	}
	lib, _, err := Train(TrainOptions{Platform: "local", Shapes: 12, Quick: true, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.OptimalThreads(256, 256, 256); got < 1 {
		t.Errorf("local OptimalThreads = %d", got)
	}
}
