// Package boost implements the two gradient-boosting candidates: an
// XGBoost-style booster (second-order exact-greedy splits with L2 leaf
// regularisation and γ pruning) and a LightGBM-style booster (histogram
// split finding with leaf-wise growth). XGBoost is the model the paper
// ultimately ships in ADSALA on both platforms.
package boost

import (
	"math"
	"sort"

	"repro/internal/ml"
)

func init() {
	ml.RegisterKind("xgb", func() ml.Regressor { return NewXGB(XGBParams{}) })
	ml.RegisterKind("lgbm", func() ml.Regressor { return NewLGBM(LGBMParams{}) })
}

// XGBParams configure the XGBoost-style booster. Zero values pick defaults.
type XGBParams struct {
	NRounds        int     `json:"n_rounds"`         // default 200
	MaxDepth       int     `json:"max_depth"`        // default 6
	LearningRate   float64 `json:"learning_rate"`    // default 0.1 (eta)
	Lambda         float64 `json:"lambda"`           // L2 on leaf weights, default 1
	Gamma          float64 `json:"gamma"`            // min split gain, default 0
	MinChildWeight float64 `json:"min_child_weight"` // min hessian sum per leaf, default 1
	Subsample      float64 `json:"subsample"`        // row subsample per round, default 1
	Seed           int64   `json:"seed"`
}

func (p XGBParams) withDefaults() XGBParams {
	if p.NRounds <= 0 {
		p.NRounds = 200
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 6
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.Lambda <= 0 {
		p.Lambda = 1
	}
	if p.MinChildWeight <= 0 {
		p.MinChildWeight = 1
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}
	return p
}

// xgbNode is a node of one boosted tree, stored in a flat slice so the
// whole ensemble serialises compactly.
type xgbNode struct {
	Feature   int     `json:"f"` // -1 for leaf
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l,omitempty"` // child indices into the tree's slice
	Right     int     `json:"r,omitempty"`
	Value     float64 `json:"v"` // leaf weight
}

// XGB is the fitted XGBoost-style gradient-boosted tree ensemble for the
// squared-error objective (gradient g = ŷ−y, hessian h = 1).
type XGB struct {
	Params XGBParams   `json:"params"`
	Base   float64     `json:"base"` // initial prediction (target mean)
	Trees  [][]xgbNode `json:"trees"`
}

// NewXGB returns an unfitted booster.
func NewXGB(p XGBParams) *XGB { return &XGB{Params: p} }

// Name implements ml.Regressor.
func (x *XGB) Name() string { return "XGBoost" }

// Fit implements ml.Regressor.
func (x *XGB) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	p := x.Params.withDefaults()
	n, d := len(y), len(X[0])

	x.Base = 0
	for _, v := range y {
		x.Base += v
	}
	x.Base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = x.Base
	}
	grad := make([]float64, n)

	// Pre-sorted feature orders, computed once and reused every round (the
	// "exact greedy" block structure of the XGBoost paper).
	orders := make([][]int, d)
	for f := 0; f < d; f++ {
		ord := make([]int, n)
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return X[ord[a]][f] < X[ord[b]][f] })
		orders[f] = ord
	}

	rng := newSplitMix(uint64(p.Seed) + 0x1234)
	x.Trees = x.Trees[:0]
	for round := 0; round < p.NRounds; round++ {
		for i := range grad {
			grad[i] = pred[i] - y[i] // squared loss gradient; hessian = 1
		}
		inSample := make([]bool, n)
		if p.Subsample < 1 {
			for i := range inSample {
				inSample[i] = rng.float64() < p.Subsample
			}
		} else {
			for i := range inSample {
				inSample[i] = true
			}
		}
		b := &xgbBuilder{X: X, grad: grad, in: inSample, orders: orders, p: p}
		members := make([]bool, n)
		for i := range members {
			members[i] = inSample[i]
		}
		root := b.build(members, 0)
		if len(b.nodes) == 0 {
			break
		}
		_ = root
		x.Trees = append(x.Trees, b.nodes)
		// Update predictions with the new tree.
		for i := 0; i < n; i++ {
			pred[i] += p.LearningRate * evalTree(b.nodes, X[i])
		}
	}
	return nil
}

// Predict implements ml.Regressor.
func (x *XGB) Predict(v []float64) float64 {
	s := x.Base
	for _, t := range x.Trees {
		s += x.Params.withDefaults().LearningRate * evalTree(t, v)
	}
	return s
}

func evalTree(nodes []xgbNode, v []float64) float64 {
	i := 0
	for nodes[i].Feature >= 0 {
		if v[nodes[i].Feature] <= nodes[i].Threshold {
			i = nodes[i].Left
		} else {
			i = nodes[i].Right
		}
	}
	return nodes[i].Value
}

type xgbBuilder struct {
	X      [][]float64
	grad   []float64
	in     []bool
	orders [][]int
	p      XGBParams
	nodes  []xgbNode
}

// build grows one node over the member mask and returns its index.
func (b *xgbBuilder) build(members []bool, depth int) int {
	var g, h float64
	cnt := 0
	for i, m := range members {
		if m {
			g += b.grad[i]
			h++ // hessian 1 per sample
			cnt++
		}
	}
	leafValue := 0.0
	if h+b.p.Lambda > 0 {
		leafValue = -g / (h + b.p.Lambda)
	}
	mkLeaf := func() int {
		b.nodes = append(b.nodes, xgbNode{Feature: -1, Value: leafValue})
		return len(b.nodes) - 1
	}
	if depth >= b.p.MaxDepth || cnt < 2 || h < 2*b.p.MinChildWeight {
		return mkLeaf()
	}

	// Exact greedy split search using the pre-sorted orders.
	baseScore := g * g / (h + b.p.Lambda)
	bestGain := b.p.Gamma + 1e-12
	bestF, bestThr := -1, 0.0
	d := len(b.X[0])
	for f := 0; f < d; f++ {
		var lg, lh float64
		ord := b.orders[f]
		prevX := math.Inf(-1)
		prevSeen := false
		for _, i := range ord {
			if !members[i] {
				continue
			}
			xi := b.X[i][f]
			if prevSeen && xi != prevX && lh >= b.p.MinChildWeight && h-lh >= b.p.MinChildWeight {
				rg, rh := g-lg, h-lh
				gain := 0.5 * (lg*lg/(lh+b.p.Lambda) + rg*rg/(rh+b.p.Lambda) - baseScore)
				if gain > bestGain {
					bestGain, bestF, bestThr = gain, f, prevX+(xi-prevX)/2
				}
			}
			lg += b.grad[i]
			lh++
			prevX, prevSeen = xi, true
		}
	}
	if bestF < 0 {
		return mkLeaf()
	}

	leftM := make([]bool, len(members))
	rightM := make([]bool, len(members))
	for i, m := range members {
		if !m {
			continue
		}
		if b.X[i][bestF] <= bestThr {
			leftM[i] = true
		} else {
			rightM[i] = true
		}
	}
	self := len(b.nodes)
	b.nodes = append(b.nodes, xgbNode{Feature: bestF, Threshold: bestThr})
	l := b.build(leftM, depth+1)
	r := b.build(rightM, depth+1)
	b.nodes[self].Left = l
	b.nodes[self].Right = r
	return self
}

// splitMix is a tiny deterministic PRNG for row subsampling.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

var _ ml.Regressor = (*XGB)(nil)
