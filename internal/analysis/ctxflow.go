package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the project's context and HTTP-response hygiene:
//
//  1. Library code in internal/serve, internal/gather and internal/retry
//     must not mint its own context via context.Background()/TODO() — the
//     caller's deadline and cancellation must flow through (PR 7 made
//     every client and coordinator path context-bounded; this keeps it
//     that way). Compatibility wrappers that intentionally detach carry
//     an //adsala:ignore.
//  2. Exported functions that perform HTTP I/O directly must take a
//     context.Context parameter, and http.NewRequest is rejected in
//     favour of http.NewRequestWithContext.
//  3. Every *http.Response obtained in a function must have its Body
//     closed, and explicitly drained (io.Copy to io.Discard, or
//     io.ReadAll) before the close so the keep-alive connection is
//     reusable — the leaked-connection class of bug fixed in PR 7.
//     Responses that escape the function (returned or passed on) are the
//     callee's responsibility.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread contexts through library code and close+drain every http.Response body",
	Run:  runCtxFlow,
}

// ctxRestricted lists the import-path suffixes of the packages where
// minting a fresh context is forbidden (library code on request paths).
var ctxRestricted = []string{"internal/serve", "internal/gather", "internal/retry"}

func runCtxFlow(pass *Pass) error {
	restricted := false
	for _, suffix := range ctxRestricted {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			restricted = true
			break
		}
	}
	for _, f := range pass.Files {
		if restricted {
			checkNoFreshContext(pass, f)
		}
		checkNewRequest(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkExportedHTTPTakesCtx(pass, fd)
			checkBodyDrain(pass, fd)
		}
	}
	return nil
}

// checkNoFreshContext reports context.Background()/TODO() calls.
func checkNoFreshContext(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() in library code — take the caller's context so deadlines and cancellation flow through",
				fn.Name())
		}
		return true
	})
}

// checkNewRequest reports http.NewRequest (the context-less constructor).
func checkNewRequest(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequest" {
			pass.Reportf(call.Pos(), "http.NewRequest drops the caller's context — use http.NewRequestWithContext")
		}
		return true
	})
}

// checkExportedHTTPTakesCtx requires a context.Context parameter on
// exported functions that perform HTTP I/O in their own body.
func checkExportedHTTPTakesCtx(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || hasContextParam(pass.Info, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := httpIOCall(pass.Info, call); ok {
			pass.Reportf(fd.Pos(),
				"exported %s performs HTTP I/O (%s) but takes no context.Context — callers cannot bound or cancel it",
				fd.Name.Name, name)
			return false
		}
		return true
	})
}

// hasContextParam reports whether fd declares a context.Context parameter.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// httpIOCall reports whether call performs an HTTP round trip: a
// net/http package function (Get, Post, Head, PostForm) or an
// http.Client method (Do, Get, Post, PostForm, Head).
func httpIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Name() != "Client" {
			return "", false
		}
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "http.Client." + fn.Name(), true
		}
		return "", false
	}
	switch fn.Name() {
	case "Get", "Post", "Head", "PostForm":
		return "http." + fn.Name(), true
	}
	return "", false
}

// isHTTPResponse reports whether t is *net/http.Response.
func isHTTPResponse(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// respUse accumulates what one function does with one *http.Response.
type respUse struct {
	closed  bool
	drained bool
	escaped bool
}

// checkBodyDrain tracks every *http.Response-typed variable assigned in
// fd and requires Body.Close plus an explicit drain, unless the response
// escapes.
func checkBodyDrain(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Collect response variables: idents assigned from a call that yields
	// *net/http.Response.
	respVars := make(map[*types.Var]*ast.Ident)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || !isHTTPResponse(v.Type()) {
				continue
			}
			if _, seen := respVars[v]; !seen {
				respVars[v] = id
			}
		}
		return true
	})
	if len(respVars) == 0 {
		return
	}

	uses := make(map[*types.Var]*respUse)
	for v := range respVars {
		uses[v] = &respUse{}
	}
	walkWithParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil {
			return
		}
		use, tracked := uses[v]
		if !tracked {
			return
		}
		classifyRespUse(info, id, parents, use)
	})

	for v, use := range uses {
		id := respVars[v]
		switch {
		case use.escaped:
			// The response left this function; closing is the consumer's job.
		case !use.closed:
			pass.Reportf(id.Pos(), "response body of %s is never closed — every path must close it", v.Name())
		case !use.drained:
			pass.Reportf(id.Pos(),
				"response body of %s is closed but never drained — io.Copy(io.Discard, ...) before Close so the connection is reused",
				v.Name())
		}
	}
}

// classifyRespUse inspects one appearance of a response variable.
func classifyRespUse(info *types.Info, id *ast.Ident, parents []ast.Node, use *respUse) {
	if len(parents) == 0 {
		return
	}
	parent := parents[len(parents)-1]

	// resp.Body...
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		if sel.Sel.Name != "Body" {
			return // resp.StatusCode etc.
		}
		// resp.Body.Close() ?
		if len(parents) >= 3 {
			if outer, ok := parents[len(parents)-2].(*ast.SelectorExpr); ok && outer.Sel.Name == "Close" {
				if call, ok := parents[len(parents)-3].(*ast.CallExpr); ok && call.Fun == outer {
					use.closed = true
					return
				}
			}
		}
		// resp.Body handed to a call: a drain if any enclosing call is
		// io.Copy(io.Discard, ...) or io.ReadAll(...) — including through
		// wrappers like io.LimitReader. Any other read (a JSON decoder, a
		// bare LimitReader) does not guarantee the stream is consumed.
		for i := len(parents) - 2; i >= 0; i-- {
			if call, ok := parents[i].(*ast.CallExpr); ok && isDrainCall(info, call) {
				use.drained = true
				return
			}
		}
		return
	}

	// Bare resp passed along, returned, or stored: it escapes.
	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				use.escaped = true
			}
		}
	case *ast.ReturnStmt:
		use.escaped = true
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				use.escaped = true
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		use.escaped = true
	}
}

// isDrainCall reports whether call fully consumes a body: io.Copy with
// io.Discard as destination, or io.ReadAll.
func isDrainCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "io" && fn.Name() == "ReadAll",
		fn.Pkg().Path() == "io/ioutil" && fn.Name() == "ReadAll":
		return true
	case fn.Pkg().Path() == "io" && fn.Name() == "Copy",
		fn.Pkg().Path() == "io/ioutil" && fn.Name() == "Copy":
		if len(call.Args) < 1 {
			return false
		}
		dst, ok := unparen(call.Args[0]).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj, _ := info.Uses[dst.Sel].(*types.Var)
		return obj != nil && obj.Pkg() != nil &&
			(obj.Pkg().Path() == "io" || obj.Pkg().Path() == "io/ioutil") && obj.Name() == "Discard"
	}
	return false
}

// walkWithParents visits every node with the stack of its ancestors.
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
