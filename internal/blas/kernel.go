package blas

import "sync"

// The register micro-tile. The micro-kernel below is hand-unrolled for this
// exact shape; Params.Validate enforces agreement.
const (
	microMR = 4
	microNR = 4
)

// packA copies the mc×kc block of op(A) starting at (ic, pc) into buf in
// MR-row panel order: panel 0 holds rows ic..ic+MR-1 column-major by k,
// padded with zeros when mc is not a multiple of MR. This layout lets the
// micro-kernel stream A with unit stride.
func packA[T float32 | float64](a view[T], trans bool, ic, pc, mc, kc int, buf []T, mr int) {
	idx := 0
	for i0 := 0; i0 < mc; i0 += mr {
		ib := min(mr, mc-i0)
		for p := 0; p < kc; p++ {
			for i := 0; i < ib; i++ {
				buf[idx] = opAt(a, trans, ic+i0+i, pc+p)
				idx++
			}
			for i := ib; i < mr; i++ {
				buf[idx] = 0
				idx++
			}
		}
	}
}

// packBPanel copies the kc×nb block of op(B) starting at (pc, jc+j0) into
// buf in NR-column panel order, zero-padded to NR.
func packBPanel[T float32 | float64](b view[T], trans bool, pc, jc, j0, kc, nb int, buf []T, nr int) {
	idx := 0
	for p := 0; p < kc; p++ {
		for j := 0; j < nb; j++ {
			buf[idx] = opAt(b, trans, pc+p, jc+j0+j)
			idx++
		}
		for j := nb; j < nr; j++ {
			buf[idx] = 0
			idx++
		}
	}
}

// packBParallel packs the kc×nc panel of op(B) into packed NR-column panels,
// splitting the NR panels across the goroutine team.
func packBParallel[T float32 | float64](b view[T], trans bool, pc, jc, kc, nc int, packed []T, nr, threads int) {
	nPanels := (nc + nr - 1) / nr
	if threads > nPanels {
		threads = nPanels
	}
	if threads <= 1 {
		for pn := 0; pn < nPanels; pn++ {
			j0 := pn * nr
			nb := min(nr, nc-j0)
			packBPanel(b, trans, pc, jc, j0, kc, nb, packed[pn*kc*nr:(pn+1)*kc*nr], nr)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo := nPanels * w / threads
		hi := nPanels * (w + 1) / threads
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for pn := lo; pn < hi; pn++ {
				j0 := pn * nr
				nb := min(nr, nc-j0)
				packBPanel(b, trans, pc, jc, j0, kc, nb, packed[pn*kc*nr:(pn+1)*kc*nr], nr)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// macroKernel multiplies the packed mc×kc A block with the packed kc×nc B
// panel, updating C(ic:ic+mc, jc:jc+nc). first selects whether beta is
// applied (only on the first KC iteration).
func macroKernel[T float32 | float64](alpha T, packedA, packedB []T, beta T, c view[T], ic, jc, mc, nc, kc int, first bool, prm Params) {
	mr, nr := prm.MR, prm.NR
	var acc [microMR * microNR]T
	for i0 := 0; i0 < mc; i0 += mr {
		ib := min(mr, mc-i0)
		aPanel := packedA[(i0/mr)*kc*mr:]
		for j0 := 0; j0 < nc; j0 += nr {
			jb := min(nr, nc-j0)
			bPanel := packedB[(j0/nr)*kc*nr:]
			microKernel(aPanel, bPanel, kc, &acc)
			storeTile(alpha, beta, first, &acc, c, ic+i0, jc+j0, ib, jb)
		}
	}
}

// microKernel computes acc = Apanel · Bpanel for one MR×NR tile, where
// Apanel is kc steps of MR values and Bpanel kc steps of NR values. The
// accumulators live in registers; this is where all FLOPs happen.
func microKernel[T float32 | float64](aPanel, bPanel []T, kc int, acc *[microMR * microNR]T) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	var c20, c21, c22, c23 T
	var c30, c31, c32, c33 T
	ai, bi := 0, 0
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := aPanel[ai], aPanel[ai+1], aPanel[ai+2], aPanel[ai+3]
		b0, b1, b2, b3 := bPanel[bi], bPanel[bi+1], bPanel[bi+2], bPanel[bi+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		ai += microMR
		bi += microNR
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// storeTile writes the accumulated tile into C with alpha/beta handling,
// clipping to the ib×jb valid region.
func storeTile[T float32 | float64](alpha, beta T, first bool, acc *[microMR * microNR]T, c view[T], ci, cj, ib, jb int) {
	for i := 0; i < ib; i++ {
		row := c.data[(ci+i)*c.stride+cj:]
		for j := 0; j < jb; j++ {
			v := alpha * acc[i*microNR+j]
			if first {
				if beta == 0 {
					row[j] = v
				} else {
					row[j] = beta*row[j] + v
				}
			} else {
				row[j] += v
			}
		}
	}
}
