package halton

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(len(defaultBases)+1, 1); err == nil {
		t.Error("New(too many dims) should fail")
	}
	if _, err := NewWithBases(nil, 1); err == nil {
		t.Error("NewWithBases(nil) should fail")
	}
	if _, err := NewWithBases([]int{1}, 1); err == nil {
		t.Error("base 1 should fail")
	}
	s, err := New(3, 42)
	if err != nil {
		t.Fatalf("New(3): %v", err)
	}
	if s.Dim() != 3 {
		t.Errorf("Dim() = %d, want 3", s.Dim())
	}
}

func TestRangeInvariant(t *testing.T) {
	s, _ := New(3, 7)
	for i := 0; i < 5000; i++ {
		p := s.Next()
		for d, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("point %d dim %d = %v out of [0,1)", i, d, v)
			}
		}
	}
}

// With an identity permutation (seed irrelevant for base 2, whose only
// 0-fixing permutation is identity), the first base-2 values are the classic
// van der Corput sequence 1/2, 1/4, 3/4, 1/8, ...
func TestVanDerCorputBase2(t *testing.T) {
	s, _ := NewWithBases([]int{2}, 1)
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	for i, w := range want {
		got := s.Next()[0]
		if math.Abs(got-w) > 1e-15 {
			t.Errorf("point %d = %v, want %v", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(3, 99)
	b, _ := New(3, 99)
	for i := 0; i < 100; i++ {
		pa, pb := a.Next(), b.Next()
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatalf("same seed diverged at point %d dim %d: %v vs %v", i, d, pa[d], pb[d])
			}
		}
	}
}

func TestSeedChangesScrambling(t *testing.T) {
	// Base 3 has a nontrivial 0-fixing permutation, so different seeds should
	// (almost surely) produce different streams in dimension 2.
	a, _ := New(2, 1)
	b, _ := New(2, 2)
	diff := false
	for i := 0; i < 50 && !diff; i++ {
		if a.Next()[1] != b.Next()[1] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical scrambled streams")
	}
}

func TestSkip(t *testing.T) {
	a, _ := New(2, 5)
	b, _ := New(2, 5)
	for i := 0; i < 10; i++ {
		a.Next()
	}
	b.Skip(10)
	pa, pb := a.Next(), b.Next()
	if pa[0] != pb[0] || pa[1] != pb[1] {
		t.Errorf("Skip(10) misaligned: %v vs %v", pa, pb)
	}
	// Negative and zero skips are no-ops.
	b.Skip(0)
	b.Skip(-3)
	a.Next()
	pa, pb = a.Next(), b.Next()
	_ = pa
	if pb[0] == 0 && pb[1] == 0 {
		t.Error("Skip(-3) rewound the sequence")
	}
}

func TestSample(t *testing.T) {
	s, _ := New(3, 11)
	pts := s.Sample(17)
	if len(pts) != 17 {
		t.Fatalf("Sample returned %d points, want 17", len(pts))
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatalf("point has %d dims, want 3", len(p))
		}
	}
}

func TestNextIntoPanicsOnBadLength(t *testing.T) {
	s, _ := New(3, 1)
	defer func() {
		if recover() == nil {
			t.Error("NextInto with wrong length should panic")
		}
	}()
	s.NextInto(make([]float64, 2))
}

// Low-discrepancy sanity: over N points the count falling in [0, x) should be
// close to N*x for each dimension — much closer than random sampling's
// O(sqrt(N)) error.
func TestEquidistribution(t *testing.T) {
	const n = 4096
	s, _ := New(3, 123)
	pts := s.Sample(n)
	for d := 0; d < 3; d++ {
		for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			count := 0
			for _, p := range pts {
				if p[d] < x {
					count++
				}
			}
			got := float64(count) / n
			if math.Abs(got-x) > 0.01 {
				t.Errorf("dim %d: fraction below %v = %v, want within 0.01", d, x, got)
			}
		}
	}
}

// Property: scrambled permutations always fix 0 and are bijections.
func TestScramblePermutationProperty(t *testing.T) {
	f := func(seed int64, braw uint8) bool {
		b := 2 + int(braw%29)
		s, err := NewWithBases([]int{b}, seed)
		if err != nil {
			return false
		}
		p := s.perms[0]
		if p[0] != 0 {
			return false
		}
		seen := make([]bool, b)
		for _, v := range p {
			if v < 0 || v >= b || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: all emitted coordinates stay in [0,1) regardless of seed/base.
func TestRadicalInverseRangeProperty(t *testing.T) {
	f := func(seed int64, braw uint8, steps uint8) bool {
		b := 2 + int(braw%29)
		s, err := NewWithBases([]int{b}, seed)
		if err != nil {
			return false
		}
		for i := 0; i < int(steps); i++ {
			v := s.Next()[0]
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
