// Package replay backtests a trained artefact against a captured serving
// trace: it streams the flight-recorder records of package trace through a
// serve.Engine built over any candidate library — no daemon involved — and
// scores the candidate with constant-memory one-pass aggregation
// (obs.Moments + obs.Histogram), so a multi-gigabyte trace replays in a
// fixed footprint.
//
// Decision records replay through the engine's real decision path (sharded
// cache included), yielding the decision-agreement rate against the
// recorded choices and a simulated cache hit rate. Measurement records —
// executed kernel calls with wall times, captured by the in-process facade
// — are scored as labelled data: per-op predicted-vs-measured residuals and
// the model-predicted regret of the recorded choice under the candidate's
// own ranking. Replaying a trace against the artefact that recorded it
// reproduces the recorded decisions exactly (the engine is deterministic),
// which CI pins; a retrained candidate's agreement and regret against the
// same trace is the offline evaluation the ROADMAP's adaptation loop needs.
package replay

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Config tunes a replay run.
type Config struct {
	// IncludeWarmup also replays records flagged as warm-up traffic;
	// by default they are excluded, matching the /stats serving-counter
	// contract (warm-up is synthetic, and scoring it would let a candidate
	// look good on traffic no user sent).
	IncludeWarmup bool
	// CacheSize and Shards configure the replay engine's decision cache;
	// zero selects the serve defaults. Match the recording daemon's flags
	// to make the simulated hit rate comparable.
	CacheSize int
	Shards    int
}

// Summary is the JSON form of an obs.Moments aggregate.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func summarize(m *obs.Moments) Summary {
	return Summary{Count: m.Count(), Mean: m.Mean(), Std: m.Std(), Min: m.Min(), Max: m.Max()}
}

// Tails is the JSON form of a latency histogram (seconds).
type Tails struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func tails(h *obs.Histogram) Tails {
	return Tails{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.QuantileScaled(0.50),
		P90:   h.QuantileScaled(0.90),
		P99:   h.QuantileScaled(0.99),
	}
}

// OpReport is one operation's replay score.
type OpReport struct {
	// Decisions and Agreed cover replayed decision records: Agreed counts
	// those where the candidate chose exactly the recorded thread count.
	Decisions int64   `json:"decisions"`
	Agreed    int64   `json:"agreed"`
	Agreement float64 `json:"agreement"`
	// Measured counts measurement records scored as labelled data.
	Measured int64 `json:"measured"`
	// PredictedRegretSeconds summarises, per measurement record, how much
	// slower (by the candidate's own model) the recorded thread count is
	// than the candidate's best choice — 0 when they agree; always ≥ 0.
	PredictedRegretSeconds Summary `json:"predicted_regret_seconds"`
	// ResidualLog2 summarises log2(predicted/measured) per measurement
	// record: 0 is a perfect prediction, +1 predicts 2× too slow, -1
	// predicts 2× too fast. Mean near 0 with small std means the model
	// transfers to this traffic.
	ResidualLog2 Summary `json:"residual_log2"`
	// AbsRelErr summarises |predicted-measured|/measured.
	AbsRelErr Summary `json:"abs_rel_err"`
	// MeasuredLatency and PredictedLatency are the wall-time tails of the
	// measurement records and the candidate's predictions for them.
	MeasuredLatency  Tails `json:"measured_latency"`
	PredictedLatency Tails `json:"predicted_latency"`
}

// Report is the replay score of one candidate artefact against one trace.
type Report struct {
	Schema string `json:"schema"`
	// Trace provenance: what was read and what the reader had to drop.
	Files         int      `json:"trace_files"`
	Records       int64    `json:"trace_records"`
	DroppedBlocks int64    `json:"trace_dropped_blocks,omitempty"`
	DroppedBytes  int64    `json:"trace_dropped_bytes,omitempty"`
	Corrupt       []string `json:"trace_corruption,omitempty"`
	// WarmupSkipped counts records excluded as warm-up traffic (0 when
	// Config.IncludeWarmup replays them).
	WarmupSkipped int64 `json:"warmup_skipped,omitempty"`

	// Decisions / Agreed / Agreement aggregate the per-op decision replay.
	Decisions int64   `json:"decisions"`
	Agreed    int64   `json:"agreed"`
	Agreement float64 `json:"agreement"`
	// RecordedFallbacks counts decision records the daemon answered with
	// its degraded-mode heuristic; they replay like any other decision but
	// explain agreement gaps (the candidate may rank where the recorder
	// could not).
	RecordedFallbacks int64 `json:"recorded_fallbacks,omitempty"`
	// ReplayFallbacks counts decisions the candidate itself answered
	// heuristically (op missing from the candidate artefact).
	ReplayFallbacks int64 `json:"replay_fallbacks,omitempty"`
	// CacheHitRate is the simulated decision-cache hit rate of driving the
	// candidate engine with the recorded traffic.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Measured aggregates the measurement records scored.
	Measured int64 `json:"measured"`

	PerOp map[string]OpReport `json:"per_op,omitempty"`
}

// opState is one op's streaming aggregation.
type opState struct {
	decisions, agreed, measured int64
	regret                      obs.Moments
	residual                    obs.Moments
	absRelErr                   obs.Moments
	measuredLat                 *obs.Histogram
	predictedLat                *obs.Histogram
}

// Run replays the trace files against the candidate library and returns its
// score. The trace is streamed once in constant memory; corruption is
// recovered by the trace reader and surfaced in the report.
func Run(lib *core.Library, files []string, cfg Config) (*Report, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("replay: no trace files")
	}
	eng := serve.NewEngine(lib, serve.Options{CacheSize: cfg.CacheSize, Shards: cfg.Shards})
	scratch := lib.NewScratch()
	scores := make([]float64, len(lib.Candidates))

	rep := &Report{Schema: "adsala/replay/v1"}
	perOp := make([]*opState, ops.NumOps())
	opState := func(op ops.Op) *opState {
		if int(op) >= len(perOp) {
			op = ops.GEMM
		}
		if perOp[op] == nil {
			perOp[op] = newOpState()
		}
		return perOp[op]
	}

	stats, err := trace.ScanFiles(files, func(rec *trace.Record) error {
		if rec.IsWarmup() && !cfg.IncludeWarmup {
			rep.WarmupSkipped++
			return nil
		}
		if !rec.Op.Valid() {
			return fmt.Errorf("replay: record with unknown op %d (trace from a newer build?)", rec.Op)
		}
		m, k, n := int(rec.M), int(rec.K), int(rec.N)
		st := opState(rec.Op)
		if rec.IsDecision() {
			rep.Decisions++
			st.decisions++
			if rec.Flags&trace.FlagFallback != 0 {
				rep.RecordedFallbacks++
			}
			threads, fb := eng.PredictOpCtx(context.Background(), rec.Op, m, k, n)
			if fb {
				rep.ReplayFallbacks++
			}
			if threads == int(rec.Threads) {
				rep.Agreed++
				st.agreed++
			}
			return nil
		}
		// Measurement record: labelled data.
		if rec.MeasuredNs <= 0 || rec.Threads <= 0 {
			return nil
		}
		rep.Measured++
		st.measured++
		measured := float64(rec.MeasuredNs) * 1e-9
		predicted := lib.PredictOpSeconds(rec.Op, m, k, n, int(rec.Threads))
		st.measuredLat.Observe(rec.MeasuredNs)
		st.predictedLat.Observe(int64(predicted * 1e9))
		if predicted > 0 {
			st.residual.Add(math.Log2(predicted / measured))
		}
		st.absRelErr.Add(math.Abs(predicted-measured) / measured)
		// Predicted regret of the recorded choice under this candidate's
		// own ranking (0 when the candidate would have picked the same).
		best := lib.RankOpInto(rec.Op, m, k, n, scratch, scores)
		if regret := predicted - scores[best]; regret > 0 {
			st.regret.Add(regret)
		} else {
			st.regret.Add(0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep.Files = stats.Files
	rep.Records = stats.Records
	rep.DroppedBlocks = stats.DroppedBlocks
	rep.DroppedBytes = stats.DroppedBytes
	rep.Corrupt = stats.Corrupt
	if rep.Decisions > 0 {
		rep.Agreement = float64(rep.Agreed) / float64(rep.Decisions)
	}
	if hits, misses := eng.Cache().Stats(); hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	for op, st := range perOp {
		if st == nil {
			continue
		}
		or := OpReport{
			Decisions:              st.decisions,
			Agreed:                 st.agreed,
			Measured:               st.measured,
			PredictedRegretSeconds: summarize(&st.regret),
			ResidualLog2:           summarize(&st.residual),
			AbsRelErr:              summarize(&st.absRelErr),
			MeasuredLatency:        tails(st.measuredLat),
			PredictedLatency:       tails(st.predictedLat),
		}
		if st.decisions > 0 {
			or.Agreement = float64(st.agreed) / float64(st.decisions)
		}
		if rep.PerOp == nil {
			rep.PerOp = make(map[string]OpReport)
		}
		rep.PerOp[ops.Op(op).String()] = or
	}
	return rep, nil
}

func newOpState() *opState {
	return &opState{
		measuredLat:  obs.NewHistogram(1e-9),
		predictedLat: obs.NewHistogram(1e-9),
	}
}
