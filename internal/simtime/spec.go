package simtime

import (
	"fmt"

	"repro/internal/machine"
)

// Timing-backend specification. The distributed gather must tell remote
// workers how to construct the exact timer the coordinator would use locally
// — a Timer value cannot travel over the wire, but a Spec can, and Build on
// the worker reproduces the coordinator's backend bit for bit (the Simulator
// is a pure function of its Config, so a sim sweep sharded across any number
// of workers merges byte-identical to the single-node gather).

// Backend names accepted by Spec.
const (
	// BackendSim selects the analytic Simulator over a named machine.Node.
	BackendSim = "sim"
	// BackendReal selects wall-clock timing of the local pure-Go kernels.
	BackendReal = "real"
)

// Spec is a wire-serialisable description of a timing backend.
type Spec struct {
	// Backend is BackendSim or BackendReal.
	Backend string `json:"backend"`
	// Platform names the simulated machine.Node ("Gadi", "Setonix");
	// sim backend only.
	Platform string `json:"platform,omitempty"`
	// Seed is the simulator's measurement-noise seed; sim backend only.
	Seed int64 `json:"seed,omitempty"`
	// HT enables hyper-threading on the simulated node; sim backend only.
	HT bool `json:"ht,omitempty"`
	// Iters is the RealTimer's averaged repetition count; real backend only.
	Iters int `json:"iters,omitempty"`
}

// SimSpec returns the Spec describing the Simulator that DefaultConfig
// builds for the named platform with the given seed and HT setting — the
// counterpart of the adsala training-config construction.
func SimSpec(platform string, seed int64, ht bool) Spec {
	return Spec{Backend: BackendSim, Platform: platform, Seed: seed, HT: ht}
}

// RealSpec returns the Spec describing a local RealTimer averaging iters
// repetitions.
func RealSpec(iters int) Spec {
	return Spec{Backend: BackendReal, Iters: iters}
}

// Build constructs the described timer. The sim backend reproduces the
// DefaultConfig the training path uses (same noise level, blocking
// parameters and affinity policy), overriding only seed and HT, so any two
// parties building the same Spec time identically.
func (s Spec) Build() (Timer, error) {
	switch s.Backend {
	case BackendSim:
		node, err := machine.ByName(s.Platform)
		if err != nil {
			return nil, fmt.Errorf("simtime: spec: %w", err)
		}
		cfg := DefaultConfig(node)
		cfg.HT = s.HT
		cfg.Seed = s.Seed
		return New(cfg), nil
	case BackendReal:
		iters := s.Iters
		if iters < 1 {
			iters = 3
		}
		return NewRealTimer(iters), nil
	default:
		return nil, fmt.Errorf("simtime: spec: unknown backend %q (want %q or %q)",
			s.Backend, BackendSim, BackendReal)
	}
}
