package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures a Recorder. The zero value selects the defaults.
type Options struct {
	// RingSize is the capacity of the in-memory record ring (rounded up to
	// a power of two). When the drain goroutine falls behind by this many
	// records, new records are dropped (and counted) instead of blocking
	// the request path. 0 selects 8192.
	RingSize int
	// FlushInterval bounds how long an encoded partial block may sit in
	// memory before it is written out, so a lightly loaded daemon's trace
	// stays near-real-time on disk. 0 selects 500ms.
	FlushInterval time.Duration
	// MaxFileBytes and BlockBytes configure the underlying Writer.
	MaxFileBytes int64
	BlockBytes   int
}

func (o Options) withDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = 8192
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Millisecond
	}
	return o
}

// ringSlot is one pre-allocated ring entry. seq is the Vyukov sequence
// number: slot i is free for enqueue position pos when seq == pos, holds a
// record for dequeue position pos when seq == pos+1, and returns to the
// free state at seq == pos+ringSize after consumption.
type ringSlot struct {
	seq atomic.Uint64
	rec Record
}

// Recorder is the flight recorder: a lock-free multi-producer ring drained
// by one background goroutine into a rotating block Writer. Record never
// blocks and never allocates; Close flushes everything that was accepted.
type Recorder struct {
	start time.Time
	slots []ringSlot
	mask  uint64
	enq   atomic.Uint64
	deq   uint64 // drain goroutine only

	records atomic.Int64 // accepted into the ring
	dropped atomic.Int64 // rejected: ring full, closed, or writer failed
	written atomic.Int64 // bytes on disk (mirrors Writer.BytesWritten)

	opts     Options
	w        *Writer
	failed   atomic.Bool // a write error stopped the drain; records now drop
	err      error       // first writer error (owned by the drain goroutine)
	closed   atomic.Bool
	closeCh  chan struct{}
	flushReq chan chan struct{}
	done     chan struct{}
	once     sync.Once
}

// Open starts a flight recorder writing `<prefix>-NNNNN.trace` files.
func Open(prefix string, opts Options) (*Recorder, error) {
	opts = opts.withDefaults()
	size := 1
	for size < opts.RingSize {
		size <<= 1
	}
	start := time.Now()
	w, err := NewWriter(prefix, start, WriterOptions{
		MaxFileBytes: opts.MaxFileBytes,
		BlockBytes:   opts.BlockBytes,
	})
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		start:    start,
		slots:    make([]ringSlot, size),
		mask:     uint64(size - 1),
		opts:     opts,
		w:        w,
		closeCh:  make(chan struct{}),
		flushReq: make(chan chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.written.Store(w.BytesWritten())
	go r.drain()
	return r, nil
}

// Record stamps the event time onto rec and pushes it into the ring. It
// never blocks: when the ring is full (the drain goroutine is behind), the
// record is dropped and counted instead, so tracing can never stall the
// serving path that produced the event.
//
//adsala:zeroalloc
func (r *Recorder) Record(rec Record) {
	if r.closed.Load() || r.failed.Load() {
		r.dropped.Add(1)
		return
	}
	rec.TS = int64(time.Since(r.start))
	for {
		pos := r.enq.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.rec = rec
				slot.seq.Store(pos + 1)
				r.records.Add(1)
				return
			}
		} else if seq < pos {
			// The slot still holds the record from one lap ago: ring full.
			r.dropped.Add(1)
			return
		}
		// seq > pos: another producer advanced enq under us; retry.
	}
}

// drain is the single consumer: it moves ring records into the block
// writer, flushes partial blocks on the FlushInterval, and performs the
// final flush at Close.
func (r *Recorder) drain() {
	defer close(r.done)
	const poll = 2 * time.Millisecond
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	lastFlush := time.Now()
	for {
		n := r.drainAvailable()
		if n > 0 {
			r.written.Store(r.w.BytesWritten())
		}
		select {
		case <-r.closeCh:
			r.drainAvailable()
			if err := r.w.Close(); err != nil && r.err == nil {
				r.err = err
			}
			r.written.Store(r.w.BytesWritten())
			return
		case ack := <-r.flushReq:
			r.drainAvailable()
			if !r.failed.Load() {
				r.writerDo(r.w.Flush())
			}
			r.written.Store(r.w.BytesWritten())
			lastFlush = time.Now()
			close(ack)
		case <-ticker.C:
			if time.Since(lastFlush) >= r.opts.FlushInterval {
				if !r.failed.Load() {
					r.writerDo(r.w.Flush())
				}
				r.written.Store(r.w.BytesWritten())
				lastFlush = time.Now()
			}
		}
	}
}

// drainAvailable appends every ring record currently available to the
// writer and returns how many it consumed.
func (r *Recorder) drainAvailable() int {
	n := 0
	for {
		pos := r.deq
		slot := &r.slots[pos&r.mask]
		if slot.seq.Load() != pos+1 {
			return n
		}
		rec := slot.rec
		slot.seq.Store(pos + uint64(len(r.slots)))
		r.deq = pos + 1
		n++
		if !r.failed.Load() {
			r.writerDo(r.w.Append(&rec))
		}
	}
}

// writerDo latches the first writer error and flips the recorder into the
// failed state: a trace that can no longer be written (disk full, file
// removed) must not take the daemon down with it, so recording degrades to
// counting drops.
func (r *Recorder) writerDo(err error) {
	if err != nil && r.err == nil {
		r.err = err
		r.failed.Store(true)
	}
}

// Flush blocks until everything accepted so far is drained and written
// through to the current file — the test and tooling hook; the daemon path
// relies on FlushInterval and Close. The drain goroutine owns the writer,
// so the flush runs over there and this call synchronises with it.
func (r *Recorder) Flush() {
	ack := make(chan struct{})
	select {
	case r.flushReq <- ack:
		select {
		case <-ack:
		case <-r.done:
		}
	case <-r.done:
	}
}

// Close stops the recorder: subsequent records drop, the ring drains, the
// final partial block flushes, and the current file closes. It returns the
// first writer error encountered over the recorder's lifetime.
func (r *Recorder) Close() error {
	r.closed.Store(true)
	r.once.Do(func() { close(r.closeCh) })
	<-r.done
	return r.err
}

// Records returns how many records have been accepted into the ring.
func (r *Recorder) Records() int64 { return r.records.Load() }

// Dropped returns how many records were dropped (ring full, recorder
// closed, or the writer failed).
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// BytesWritten returns the bytes written to disk so far.
func (r *Recorder) BytesWritten() int64 { return r.written.Load() }

// Err returns the first writer error, if any (records drop once it is set).
func (r *Recorder) Err() error {
	if !r.failed.Load() {
		return nil
	}
	return r.err
}

// RegisterMetrics exposes the recorder's counters on a metrics registry:
// adsala_trace_records_total, adsala_trace_dropped_total and the
// adsala_trace_bytes_written gauge.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("adsala_trace_records_total",
		"Flight-recorder records accepted into the trace ring.",
		func() float64 { return float64(r.records.Load()) })
	reg.CounterFunc("adsala_trace_dropped_total",
		"Flight-recorder records dropped (ring full, recorder closed, or write failure).",
		func() float64 { return float64(r.dropped.Load()) })
	reg.GaugeFunc("adsala_trace_bytes_written",
		"Trace bytes written to disk across file rotations.",
		func() float64 { return float64(r.written.Load()) })
}
