package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TestDaemonTraceCapture pins the -trace wiring end to end in-process: the
// daemon records its decisions (warm-up flagged), exposes the
// adsala_trace_* metrics on /metrics, and the closed capture replays
// against the serving artefact with exact decision agreement.
func TestDaemonTraceCapture(t *testing.T) {
	path := savedLibrary(t)
	prefix := filepath.Join(t.TempDir(), "cap")
	var out bytes.Buffer
	cfg, err := parseFlags([]string{
		"-lib", path, "-warmup", "8", "-trace", prefix, "-trace-max-mb", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tracePrefix != prefix || cfg.traceMaxMB != 4 {
		t.Fatalf("trace flags parsed wrong: %+v", cfg)
	}
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flight recorder capturing") {
		t.Errorf("recorder start not reported: %q", out.String())
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Real traffic: two distinct shapes, one repeated (a cache hit).
	for _, q := range []string{
		"/predict?m=256&k=1024&n=256",
		"/predict?m=256&k=1024&n=256",
		"/predict?m=512&k=512&n=512",
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", q, resp.StatusCode)
		}
	}

	// The recorder's metrics are registered and exposed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"adsala_trace_records_total",
		"adsala_trace_dropped_total",
		"adsala_trace_bytes_written",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}

	// Close the capture the way run() does after shutdown, then replay it
	// against the recording artefact: agreement must be exact and the
	// warm-up pass filtered.
	rec := srv.Engine().Recorder()
	if rec == nil {
		t.Fatal("no recorder attached")
	}
	srv.Engine().SetRecorder(nil)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d records", rec.Dropped())
	}

	files, err := trace.Files(prefix)
	if err != nil || len(files) == 0 {
		t.Fatalf("trace files: %v, %v", files, err)
	}
	lib, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay.Run(lib, files, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decisions != 3 {
		t.Errorf("replayed %d serving decisions, want 3", rep.Decisions)
	}
	if rep.Agreement != 1.0 {
		t.Errorf("agreement %v, want 1.0", rep.Agreement)
	}
	if rep.WarmupSkipped == 0 {
		t.Error("daemon warm-up records not flagged/skipped")
	}
}
