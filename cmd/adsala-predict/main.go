// adsala-predict queries a saved ADSALA library: for a given GEMM shape it
// prints the predicted runtime of every candidate thread count and the
// selected optimum.
//
// Usage:
//
//	adsala-predict -lib gadi.adsala.json -m 64 -k 2048 -n 64
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	adsala "repro"
	"repro/internal/logx"
	"repro/internal/tabulate"
)

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adsala-predict", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		libPath  = fs.String("lib", "adsala.json", "library file written by adsala-train")
		m        = fs.Int("m", 1024, "rows of A / C")
		k        = fs.Int("k", 1024, "cols of A / rows of B")
		n        = fs.Int("n", 1024, "cols of B / C")
		levelStr = logx.RegisterFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	level, err := logx.ParseLevel(*levelStr)
	if err != nil {
		return err
	}
	lg := logx.New(out, level)
	if *m < 1 || *k < 1 || *n < 1 {
		return fmt.Errorf("dimensions must be positive, got %dx%dx%d", *m, *k, *n)
	}

	lg.Debugf("loading library %s", *libPath)
	lib, err := adsala.Load(*libPath)
	if err != nil {
		return err
	}
	lg.Debugf("library format v%d, trained ops %v", lib.FormatVersion(), lib.TrainedOps())
	opt := lib.OptimalThreads(*m, *k, *n)
	fmt.Fprintf(out, "library: platform=%s model=%s\n", lib.Platform(), lib.ModelKind())
	fmt.Fprintf(out, "GEMM %dx%dx%d -> optimal threads: %d\n\n", *m, *k, *n, opt)

	tb := tabulate.New("threads", "predicted runtime (us)", "")
	for _, c := range lib.Candidates() {
		mark := ""
		if c == opt {
			mark = "<== selected"
		}
		tb.Row(tabulate.D(c), tabulate.F(lib.PredictRuntime(*m, *k, *n, c)*1e6, 2), mark)
	}
	fmt.Fprint(out, tb.String())
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-predict: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
