package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Describe(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Describe = %+v", s)
	}
	if !near(s.Std, math.Sqrt(2), 1e-12) {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
}

func TestDescribeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Describe(empty) should panic")
		}
	}()
	Describe(nil)
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 0.5); got != 15 {
		t.Errorf("P50 of {10,20} = %v, want 15", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("percentile of singleton = %v, want 7", got)
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := Percentile(xs, 1); got != 20 {
		t.Errorf("P100 = %v, want 20", got)
	}
}

func TestPercentileValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(p>1) should panic")
		}
	}()
	Percentile([]float64{1}, 1.5)
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 1.5, 2, 3.999, 4}, 4, 0, 4)
	want := []int{2, 2, 1, 2} // 4.0 lands in last bin; 3.999 too
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	// Out-of-range values are dropped.
	h2 := NewHistogram([]float64{-1, 5}, 4, 0, 4)
	for _, c := range h2.Counts {
		if c != 0 {
			t.Errorf("out-of-range values binned: %v", h2.Counts)
		}
	}
}

func TestHistogramBinCenterAndRender(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 3}, 2, 0, 4)
	if h.BinCenter(0) != 1 || h.BinCenter(1) != 3 {
		t.Errorf("bin centers = %v, %v", h.BinCenter(0), h.BinCenter(1))
	}
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Errorf("tallest bin should render full width:\n%s", out)
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 2 {
		t.Errorf("expected 2 lines:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !near(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); !near(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); !near(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{1, 2, 3, 4, 5}
	if got := Skewness(sym); !near(got, 0, 1e-12) {
		t.Errorf("symmetric skewness = %v", got)
	}
	right := []float64{1, 1, 1, 1, 100}
	if Skewness(right) <= 1 {
		t.Errorf("right-skewed data should have skewness > 1, got %v", Skewness(right))
	}
}

// Property: Describe invariants — Min <= P25 <= Median <= P75 <= Max,
// and Mean within [Min, Max].
func TestDescribeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Describe(xs)
		tol := 1e-9 * (math.Abs(s.Min) + math.Abs(s.Max) + 1)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.Max && s.Mean >= s.Min-tol && s.Mean <= s.Max+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram conserves in-range counts.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64, nb uint8) bool {
		n := 1 + int(nb%16)
		xs := make([]float64, 0, len(raw))
		inRange := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(math.Abs(v), 20) - 5 // spread around [-5, 15)
			xs = append(xs, v)
			if v >= 0 && v <= 10 {
				inRange++
			}
		}
		h := NewHistogram(xs, n, 0, 10)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(p1%101) / 100
		b := float64(p2%101) / 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStdSortedInvariance(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if Std(xs) != Std(sorted) {
		t.Error("Std should be order-invariant")
	}
}
