// Package tune provides k-fold cross validation and grid search for the
// hyper-parameter tuning phase of the installation workflow (Fig 2). The
// paper uses CV folds rather than leave-one-out to bound the tuning cost
// (§IV-C).
package tune

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Folds partitions n row indices into k contiguous folds after a seeded
// deterministic shuffle. Every index appears in exactly one fold.
func Folds(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := newSplitMix(uint64(seed) ^ 0xabcdef)
	for i := n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	folds := make([][]int, k)
	for f := 0; f < k; f++ {
		lo, hi := n*f/k, n*(f+1)/k
		folds[f] = idx[lo:hi]
	}
	return folds
}

// CrossValRMSE returns the mean validation RMSE of the model factory over
// k folds.
func CrossValRMSE(factory func() ml.Regressor, X [][]float64, y []float64, k int, seed int64) (float64, error) {
	if err := ml.ValidateXY(X, y); err != nil {
		return 0, err
	}
	folds := Folds(len(y), k, seed)
	var total float64
	for f, val := range folds {
		inVal := make([]bool, len(y))
		for _, i := range val {
			inVal[i] = true
		}
		var trX [][]float64
		var trY []float64
		for i := range y {
			if !inVal[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		if len(trX) == 0 || len(val) == 0 {
			continue
		}
		model := factory()
		if err := model.Fit(trX, trY); err != nil {
			return 0, fmt.Errorf("tune: fold %d: %w", f, err)
		}
		var ss float64
		for _, i := range val {
			d := model.Predict(X[i]) - y[i]
			ss += d * d
		}
		total += math.Sqrt(ss / float64(len(val)))
	}
	return total / float64(len(folds)), nil
}

// Candidate is one point of a hyper-parameter grid: a label for reporting
// and a factory building the configured model.
type Candidate struct {
	Label   string
	Factory func() ml.Regressor
}

// GridResult reports the winning candidate of a grid search.
type GridResult struct {
	Best     Candidate
	BestRMSE float64
	// All maps candidate labels to their CV RMSE.
	All map[string]float64
}

// GridSearch cross-validates every candidate and returns the one with the
// lowest mean validation RMSE.
func GridSearch(cands []Candidate, X [][]float64, y []float64, k int, seed int64) (GridResult, error) {
	if len(cands) == 0 {
		return GridResult{}, fmt.Errorf("tune: empty candidate grid")
	}
	res := GridResult{All: make(map[string]float64, len(cands)), BestRMSE: math.Inf(1)}
	for _, c := range cands {
		rmse, err := CrossValRMSE(c.Factory, X, y, k, seed)
		if err != nil {
			return GridResult{}, fmt.Errorf("tune: candidate %q: %w", c.Label, err)
		}
		res.All[c.Label] = rmse
		if rmse < res.BestRMSE {
			res.BestRMSE = rmse
			res.Best = c
		}
	}
	return res, nil
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
